package nn

import (
	"math"
	"math/rand"
	"testing"

	"warper/internal/parallel"
)

func randBatch(rng *rand.Rand, rows, in, out int) (xs, ys [][]float64) {
	for r := 0; r < rows; r++ {
		x := make([]float64, in)
		y := make([]float64, out)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		for i := range y {
			y[i] = rng.NormFloat64()
		}
		xs = append(xs, x)
		ys = append(ys, y)
	}
	return xs, ys
}

func testNets() map[string]func(*rand.Rand) *Network {
	return map[string]func(*rand.Rand) *Network{
		"mlp-leaky": func(rng *rand.Rand) *Network { return MLP(9, 16, 2, 5, rng) },
		"sigmoid": func(rng *rand.Rand) *Network {
			return NewNetwork(NewDense(9, 12, rng), NewSigmoid(), NewDense(12, 5, rng))
		},
		"tanh-relu": func(rng *rand.Rand) *Network {
			return NewNetwork(NewDense(9, 12, rng), NewTanh(), NewDense(12, 7, rng), NewReLU(), NewDense(7, 5, rng))
		},
	}
}

// TestBatchForwardMatchesSerial: BatchForward must be byte-identical to the
// original per-sample forward pass (the batched Dense kernel keeps each
// sample's dot product in the same accumulation order).
func TestBatchForwardMatchesSerial(t *testing.T) {
	for name, mk := range testNets() {
		for _, rows := range []int{1, 3, 8, 19, 32} {
			rng := rand.New(rand.NewSource(41))
			n := mk(rng)
			xs, _ := randBatch(rng, rows, 9, 5)
			x := NewMat(rows, 9)
			x.CopyFromRows(xs)
			got := n.BatchForward(x)
			for r := 0; r < rows; r++ {
				want := ReferenceForward(n, xs[r])
				for i := range want {
					if got.Row(r)[i] != want[i] {
						t.Fatalf("%s rows=%d: row %d col %d: batched %v != serial %v",
							name, rows, r, i, got.Row(r)[i], want[i])
					}
				}
			}
		}
	}
}

// TestBatchBackwardDataMatchesSerial: input gradients from the batched
// backward must be byte-identical to the per-sample Backward path.
func TestBatchBackwardDataMatchesSerial(t *testing.T) {
	for name, mk := range testNets() {
		for _, rows := range []int{1, 5, 8, 21} {
			rng := rand.New(rand.NewSource(43))
			n := mk(rng)
			ref := n.Clone()
			xs, _ := randBatch(rng, rows, 9, 5)
			grads := make([][]float64, rows)
			for r := range grads {
				grads[r] = make([]float64, 5)
				for i := range grads[r] {
					grads[r][i] = rng.NormFloat64()
				}
				if r%3 == 0 {
					grads[r][rng.Intn(5)] = 0 // exercise the zero-skip path
				}
			}
			x := NewMat(rows, 9)
			x.CopyFromRows(xs)
			n.BatchForward(x)
			g := NewMat(rows, 5)
			g.CopyFromRows(grads)
			dx := n.BatchBackwardData(g)
			for r := 0; r < rows; r++ {
				ref.Forward(xs[r])
				want := ref.Backward(grads[r])
				for i := range want {
					if dx.Row(r)[i] != want[i] {
						t.Fatalf("%s rows=%d row=%d col=%d: batched dX %v != serial %v",
							name, rows, r, i, dx.Row(r)[i], want[i])
					}
				}
			}
		}
	}
}

// TestTrainBatchIdenticalAtAnyWorkerCount is the determinism acceptance test:
// the shard layout depends only on the batch size and the reduction order is
// fixed, so full training trajectories are byte-identical no matter how many
// workers the pool runs.
func TestTrainBatchIdenticalAtAnyWorkerCount(t *testing.T) {
	t.Cleanup(func() { parallel.SetWorkers(0) })
	train := func(workers int) *Network {
		parallel.SetWorkers(workers)
		rng := rand.New(rand.NewSource(97))
		n := MLP(9, 32, 3, 5, rng)
		xs, ys := randBatch(rng, 50, 9, 5)
		if _, err := n.Fit(xs, ys, MSE{}, NewAdam(1e-3), 5, 32, rng); err != nil {
			t.Fatalf("Fit: %v", err)
		}
		return n
	}
	base := train(1)
	for _, workers := range []int{2, 3, 8} {
		got := train(workers)
		bp, gp := base.Params(), got.Params()
		for pi := range bp {
			for i := range bp[pi].W {
				if bp[pi].W[i] != gp[pi].W[i] {
					t.Fatalf("workers=%d: param %d idx %d diverged: %v vs %v",
						workers, pi, i, gp[pi].W[i], bp[pi].W[i])
				}
			}
		}
	}
}

// TestTrainBatchMatchesReferenceWithinOneShard: with the whole batch in a
// single shard there is no reassociation at all, so the batched step must be
// byte-identical to the original per-sample implementation.
func TestTrainBatchMatchesReferenceWithinOneShard(t *testing.T) {
	for _, loss := range []Loss{MSE{}, L1{}} {
		rng := rand.New(rand.NewSource(59))
		a := MLP(9, 16, 2, 5, rng)
		b := a.Clone()
		xs, ys := randBatch(rng, shardRows, 9, 5)
		for step := 0; step < 5; step++ {
			la, err := a.TrainBatch(xs, ys, loss, NewSGD(0.05))
			if err != nil {
				t.Fatalf("TrainBatch: %v", err)
			}
			lb := ReferenceTrainBatch(b, xs, ys, loss, NewSGD(0.05))
			if la != lb {
				t.Fatalf("%T step %d: batched loss %v != reference %v", loss, step, la, lb)
			}
		}
		ap, bp := a.Params(), b.Params()
		for pi := range ap {
			for i := range ap[pi].W {
				if ap[pi].W[i] != bp[pi].W[i] {
					t.Fatalf("%T: param %d idx %d: batched %v != reference %v",
						loss, pi, i, ap[pi].W[i], bp[pi].W[i])
				}
			}
		}
	}
}

// TestTrainBatchMatchesReferenceMultiShard: beyond one shard the gradient
// reduction reassociates floating-point sums, so require tight agreement
// rather than bit equality.
func TestTrainBatchMatchesReferenceMultiShard(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	a := MLP(9, 16, 2, 5, rng)
	b := a.Clone()
	xs, ys := randBatch(rng, 37, 9, 5)
	for step := 0; step < 20; step++ {
		if _, err := a.TrainBatch(xs, ys, MSE{}, NewSGD(0.05)); err != nil {
			t.Fatalf("TrainBatch: %v", err)
		}
		ReferenceTrainBatch(b, xs, ys, MSE{}, NewSGD(0.05))
	}
	ap, bp := a.Params(), b.Params()
	for pi := range ap {
		for i := range ap[pi].W {
			diff := math.Abs(ap[pi].W[i] - bp[pi].W[i])
			if diff > 1e-9*(1+math.Abs(bp[pi].W[i])) {
				t.Fatalf("param %d idx %d: batched %v vs reference %v (diff %v)",
					pi, i, ap[pi].W[i], bp[pi].W[i], diff)
			}
		}
	}
}

// TestTrainBatchCrossEntropyMatchesReference covers the fused
// softmax+cross-entropy path against the original allocating one.
func TestTrainBatchCrossEntropyMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	a := MLP(9, 16, 2, 3, rng)
	b := a.Clone()
	xs, _ := randBatch(rng, shardRows, 9, 3)
	ys := make([][]float64, len(xs))
	for i := range ys {
		ys[i] = OneHot(3, rng.Intn(3))
	}
	for step := 0; step < 5; step++ {
		la, err := a.TrainBatch(xs, ys, SoftmaxCrossEntropy{}, NewSGD(0.05))
		if err != nil {
			t.Fatalf("TrainBatch: %v", err)
		}
		lb := ReferenceTrainBatch(b, xs, ys, SoftmaxCrossEntropy{}, NewSGD(0.05))
		if la != lb {
			t.Fatalf("step %d: batched CE loss %v != reference %v", step, la, lb)
		}
	}
}

// TestTrainBatchParallelRace drives the parallel trainer hard under the race
// detector: shards share the activation matrices (disjoint rows) and the
// parameter reduction happens after the barrier.
func TestTrainBatchParallelRace(t *testing.T) {
	parallel.SetWorkers(4)
	t.Cleanup(func() { parallel.SetWorkers(0) })
	rng := rand.New(rand.NewSource(71))
	n := MLP(9, 32, 3, 5, rng)
	xs, ys := randBatch(rng, 64, 9, 5)
	opt := NewAdam(1e-3)
	for step := 0; step < 30; step++ {
		if _, err := n.TrainBatch(xs, ys, MSE{}, opt); err != nil {
			t.Fatalf("TrainBatch: %v", err)
		}
	}
}

// TestTrainBatchZeroAllocsSteadyState is the allocs-per-op acceptance test:
// after warm-up (arena sized, Adam moments built, pool started) a train step
// must not allocate.
func TestTrainBatchZeroAllocsSteadyState(t *testing.T) {
	parallel.SetWorkers(2)
	t.Cleanup(func() { parallel.SetWorkers(0) })
	rng := rand.New(rand.NewSource(73))
	n := MLP(18, 128, 3, 16, rng)
	xs, ys := randBatch(rng, 32, 18, 16)
	opt := NewAdam(1e-3)
	for i := 0; i < 3; i++ {
		if _, err := n.TrainBatch(xs, ys, MSE{}, opt); err != nil {
			t.Fatalf("warm-up TrainBatch: %v", err)
		}
	}
	avg := testing.AllocsPerRun(50, func() {
		if _, err := n.TrainBatch(xs, ys, MSE{}, opt); err != nil {
			t.Fatalf("TrainBatch: %v", err)
		}
	})
	if avg != 0 {
		t.Errorf("steady-state TrainBatch allocates %v per op, want 0", avg)
	}
}

// TestTrainBatchErrors replaces the old panic tests: malformed batches now
// return errors.
func TestTrainBatchErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	n := MLP(4, 8, 1, 2, rng)
	cases := []struct {
		name   string
		xs, ys [][]float64
	}{
		{"len mismatch", [][]float64{{1, 2, 3, 4}}, nil},
		{"ragged input", [][]float64{{1, 2, 3, 4}, {1, 2}}, [][]float64{{0, 0}, {0, 0}}},
		{"wrong input width", [][]float64{{1, 2}}, [][]float64{{0, 0}}},
		{"wrong target width", [][]float64{{1, 2, 3, 4}}, [][]float64{{0}}},
	}
	for _, tc := range cases {
		if _, err := n.TrainBatch(tc.xs, tc.ys, MSE{}, NewSGD(0.1)); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
	if _, err := n.Fit([][]float64{{1, 2, 3, 4}}, nil, MSE{}, NewSGD(0.1), 1, 8, rng); err == nil {
		t.Error("Fit len mismatch: expected error")
	}
}

// TestBatchBackwardAccumulatesLikeSerial: parameter gradients from a batched
// backward over one shard must match per-sample accumulation bit-for-bit.
func TestBatchBackwardAccumulatesLikeSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	n := MLP(9, 16, 2, 5, rng)
	ref := n.Clone()
	xs, _ := randBatch(rng, shardRows, 9, 5)
	grads := make([][]float64, len(xs))
	for r := range grads {
		grads[r] = make([]float64, 5)
		for i := range grads[r] {
			grads[r][i] = rng.NormFloat64()
		}
	}
	x := NewMat(len(xs), 9)
	x.CopyFromRows(xs)
	n.ZeroGrad()
	n.BatchForward(x)
	g := NewMat(len(xs), 5)
	g.CopyFromRows(grads)
	n.BatchBackward(g)

	ref.ZeroGrad()
	for r := range xs {
		ref.Forward(xs[r])
		ref.Backward(grads[r])
	}
	np, rp := n.Params(), ref.Params()
	for pi := range np {
		for i := range np[pi].G {
			diff := math.Abs(np[pi].G[i] - rp[pi].G[i])
			if diff > 1e-12*(1+math.Abs(rp[pi].G[i])) {
				t.Fatalf("param %d idx %d: batched grad %v vs serial %v",
					pi, i, np[pi].G[i], rp[pi].G[i])
			}
		}
	}
}

// TestInferBatchMatchesForward pins the tile-resident inference fast path:
// for every row (including the scalar tail when rows % 4 != 0) InferBatch
// must be bit-identical to the per-sample Forward, across each elementwise
// activation kind it knows how to keep in the tile.
func TestInferBatchMatchesForward(t *testing.T) {
	if !simdAvailable {
		t.Skip("no AVX2 on this machine")
	}
	rng := rand.New(rand.NewSource(5))
	nets := map[string]*Network{
		"leaky": NewNetwork(NewDense(6, 16, rng), NewLeakyReLU(), NewDense(16, 16, rng), NewLeakyReLU(), NewDense(16, 1, rng)),
		"relu":  NewNetwork(NewDense(5, 8, rng), NewReLU(), NewDense(8, 1, rng)),
		"mixed": NewNetwork(NewDense(7, 9, rng), NewTanh(), NewDense(9, 6, rng), NewSigmoid(), NewDense(6, 1, rng)),
	}
	for name, n := range nets {
		for _, rows := range []int{1, 3, 4, 8, 11} {
			x := NewMat(rows, n.Layers[0].(*Dense).In)
			for r := 0; r < rows; r++ {
				row := x.Row(r)
				for i := range row {
					row[i] = rng.NormFloat64()
				}
			}
			out := make([]float64, rows)
			if !n.InferBatch(x, out) {
				t.Fatalf("%s rows=%d: InferBatch refused a batchable network", name, rows)
			}
			for r := 0; r < rows; r++ {
				if want := n.Forward(x.Row(r))[0]; out[r] != want {
					t.Fatalf("%s rows=%d row %d: InferBatch %v != Forward %v", name, rows, r, out[r], want)
				}
			}
		}
	}
}

// TestInferBatchRefusals pins the fallback contract: a wide head, a narrow
// Dense input, or disabled SIMD must make InferBatch report false without
// touching out.
func TestInferBatchRefusals(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x := NewMat(4, 6)
	out := []float64{9, 9, 9, 9}

	wide := NewNetwork(NewDense(6, 8, rng), NewLeakyReLU(), NewDense(8, 2, rng))
	if wide.InferBatch(x, out) {
		t.Error("InferBatch accepted a two-output head")
	}
	narrow := NewNetwork(NewDense(6, 3, rng), NewLeakyReLU(), NewDense(3, 1, rng))
	if narrow.InferBatch(x, out) {
		t.Error("InferBatch accepted a Dense with In < 4")
	}
	if simdAvailable {
		defer func(v bool) { simdEnabled = v }(simdEnabled)
		simdEnabled = false
		plain := NewNetwork(NewDense(6, 8, rng), NewLeakyReLU(), NewDense(8, 1, rng))
		if plain.InferBatch(x, out) {
			t.Error("InferBatch ran with SIMD disabled")
		}
	}
	for i, v := range out {
		if v != 9 {
			t.Fatalf("out[%d] = %v: a refused InferBatch must leave out untouched", i, v)
		}
	}
}

// TestBatchBackwardAfterInferBatchPanics pins the forward-validity guard:
// InferBatch does not materialize activation matrices, so a BatchBackward
// fed from it must panic instead of silently back-propagating stale state.
func TestBatchBackwardAfterInferBatchPanics(t *testing.T) {
	if !simdAvailable {
		t.Skip("no AVX2 on this machine")
	}
	rng := rand.New(rand.NewSource(7))
	n := NewNetwork(NewDense(6, 8, rng), NewLeakyReLU(), NewDense(8, 1, rng))
	x := NewMat(4, 6)
	out := make([]float64, 4)
	n.BatchForward(x) // valid forward state…
	if !n.InferBatch(x, out) {
		t.Fatal("InferBatch refused a batchable network")
	}
	defer func() {
		if recover() == nil {
			t.Error("BatchBackward after InferBatch did not panic")
		}
	}()
	n.BatchBackward(NewMat(4, 1))
}
