package nn

import "math"

// Optimizer applies accumulated gradients to parameters. EndEpoch lets
// schedules (like the paper's half-decay every 10 epochs) advance.
type Optimizer interface {
	Step(params []*Param)
	EndEpoch()
	// LR reports the current learning rate, for logging and tests.
	LR() float64
}

// SGD is stochastic gradient descent with optional momentum and the paper's
// learning-rate schedule: §3.5 trains with lr=1e-3 and halves it every 10
// epochs (DecayEvery=10, DecayFactor=0.5).
type SGD struct {
	Rate        float64
	Momentum    float64
	DecayEvery  int     // epochs between decays; 0 disables decay
	DecayFactor float64 // multiplier applied at each decay (e.g. 0.5)

	epoch    int
	velocity map[*Param][]float64
}

// NewSGD returns plain SGD with the given learning rate.
func NewSGD(rate float64) *SGD { return &SGD{Rate: rate} }

// NewPaperSGD returns the §3.5 configuration: the given rate with momentum
// 0.9, halving every 10 epochs.
func NewPaperSGD(rate float64) *SGD {
	return &SGD{Rate: rate, Momentum: 0.9, DecayEvery: 10, DecayFactor: 0.5}
}

// Step implements Optimizer.
func (s *SGD) Step(params []*Param) {
	if s.Momentum == 0 {
		for _, p := range params {
			for i := range p.W {
				p.W[i] -= s.Rate * p.G[i]
			}
		}
		return
	}
	if s.velocity == nil {
		s.velocity = make(map[*Param][]float64)
	}
	for _, p := range params {
		v := s.velocity[p]
		if v == nil {
			v = make([]float64, len(p.W))
			s.velocity[p] = v
		}
		for i := range p.W {
			v[i] = s.Momentum*v[i] - s.Rate*p.G[i]
			p.W[i] += v[i]
		}
	}
}

// EndEpoch implements Optimizer, applying the decay schedule.
func (s *SGD) EndEpoch() {
	s.epoch++
	if s.DecayEvery > 0 && s.epoch%s.DecayEvery == 0 {
		f := s.DecayFactor
		if f <= 0 {
			f = 0.5
		}
		s.Rate *= f
	}
}

// LR implements Optimizer.
func (s *SGD) LR() float64 { return s.Rate }

// Adam is the Adam optimizer (Kingma & Ba) with bias correction.
type Adam struct {
	Rate    float64
	Beta1   float64
	Beta2   float64
	Epsilon float64

	t int
	m map[*Param][]float64
	v map[*Param][]float64
}

// NewAdam returns Adam with standard hyperparameters (β1=0.9, β2=0.999).
func NewAdam(rate float64) *Adam {
	return &Adam{Rate: rate, Beta1: 0.9, Beta2: 0.999, Epsilon: 1e-8}
}

// Step implements Optimizer.
func (a *Adam) Step(params []*Param) {
	if a.m == nil {
		a.m = make(map[*Param][]float64)
		a.v = make(map[*Param][]float64)
	}
	a.t++
	c1 := 1 - math.Pow(a.Beta1, float64(a.t))
	c2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for _, p := range params {
		m := a.m[p]
		v := a.v[p]
		if m == nil {
			m = make([]float64, len(p.W))
			v = make([]float64, len(p.W))
			a.m[p], a.v[p] = m, v
		}
		i := 0
		if simdEnabled && len(p.W) >= 4 {
			// The vector kernel performs the identical sequence of
			// correctly-rounded operations per element, so results match the
			// scalar loop bit-for-bit.
			n4 := len(p.W) &^ 3
			adamStepASM(&p.W[0], &p.G[0], &m[0], &v[0], n4,
				a.Beta1, 1-a.Beta1, a.Beta2, 1-a.Beta2, c1, c2, a.Rate, a.Epsilon)
			i = n4
		}
		for ; i < len(p.W); i++ {
			g := p.G[i]
			m[i] = a.Beta1*m[i] + (1-a.Beta1)*g
			v[i] = a.Beta2*v[i] + (1-a.Beta2)*g*g
			mHat := m[i] / c1
			vHat := v[i] / c2
			p.W[i] -= a.Rate * mHat / (math.Sqrt(vHat) + a.Epsilon)
		}
	}
}

// EndEpoch implements Optimizer (no schedule).
func (a *Adam) EndEpoch() {}

// LR implements Optimizer.
func (a *Adam) LR() float64 { return a.Rate }
