//go:build amd64

package nn

// AVX2 kernels for the batched Dense layer. The vector lanes run ACROSS
// samples (or across k for the weight-gradient kernel), never across a single
// sample's reduction, so every lane performs exactly the scalar code's
// sequence of individually-rounded multiplies and adds — results are
// bit-identical to the pure-Go kernels (covered by TestSIMDMatchesGeneric).
// VMULPD+VADDPD are used instead of FMA on purpose: the Go compiler does not
// fuse multiply-add on amd64, and fusing here would change rounding.

// simdAvailable reports hardware+OS support for the AVX2 kernels.
var simdAvailable = cpuidHasAVX2()

// simdEnabled gates the kernels at runtime; tests flip it to prove the
// generic and vector paths agree bit-for-bit.
var simdEnabled = simdAvailable

// cpuidHasAVX2 checks CPUID for AVX2 and XGETBV for OS-enabled YMM state.
func cpuidHasAVX2() bool

// denseForwardBlockASM computes yt[o*4+lane] = bias[o] + Σ_k w[o*in+k] *
// xt[k*4+lane] for o in [0, out), accumulating in ascending k order per lane.
// xt is a k-major 4-sample tile; yt is an o-major 4-sample tile.
//
//go:noescape
func denseForwardBlockASM(w, bias, xt, yt *float64, in, out int)

// denseBackwardDXBlockASM accumulates gxt[k*4+lane] += Σ_o gvt[o*4+lane] *
// w[o*in+k] in ascending o order per (k, lane). gxt must be pre-zeroed.
//
//go:noescape
func denseBackwardDXBlockASM(w, gvt, gxt *float64, in, out int)

// denseBackwardDWBlockASM accumulates gw[o*in+k] += Σ_j gvt[o*4+j] * xj[k]
// in ascending sample order j for k in [0, in4) (in4 = in rounded down to a
// multiple of 4; the caller handles the k tail). x0..x3 are the four sample
// rows of a full block — callers only dispatch complete 4-row blocks. gw
// rows have stride in.
//
//go:noescape
func denseBackwardDWBlockASM(gw, gvt, x0, x1, x2, x3 *float64, in, in4, out int)

// adamStepASM applies the Adam update to the first n&^3 elements of w/g/m/v
// (the caller handles the tail). VDIVPD and VSQRTPD are IEEE correctly
// rounded — identical to scalar / and math.Sqrt — so each lane is
// bit-identical to the scalar update loop.
//
//go:noescape
func adamStepASM(w, grad, m, v *float64, n int, b1, omb1, b2, omb2, c1, c2, rate, eps float64)

// Elementwise activation kernels over the first n&^3 elements (callers handle
// the tail). Each lane applies the identical correctly-rounded select/multiply
// as the scalar branch, so outputs are bit-identical.
//
//go:noescape
func leakyForwardASM(x, y *float64, n int, alpha float64)

//go:noescape
func leakyBackwardASM(x, grad, gx *float64, n int, alpha float64)

//go:noescape
func reluForwardASM(x, y *float64, n int)

//go:noescape
func reluBackwardASM(x, grad, gx *float64, n int)
