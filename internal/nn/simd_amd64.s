//go:build amd64

#include "textflag.h"

// func cpuidHasAVX2() bool
// AVX2 requires: CPUID.1:ECX.OSXSAVE[27] and AVX[28], XCR0 XMM+YMM state
// enabled by the OS, and CPUID.7.0:EBX.AVX2[5].
TEXT ·cpuidHasAVX2(SB), NOSPLIT, $0-1
	MOVL $1, AX
	XORL CX, CX
	CPUID
	MOVL CX, R8
	ANDL $0x18000000, R8
	CMPL R8, $0x18000000
	JNE  novx
	XORL CX, CX
	XGETBV
	ANDL $6, AX
	CMPL AX, $6
	JNE  novx
	MOVL $7, AX
	XORL CX, CX
	CPUID
	ANDL $0x20, BX
	JZ   novx
	MOVB $1, ret+0(FP)
	RET

novx:
	MOVB $0, ret+0(FP)
	RET

// func denseForwardBlockASM(w, bias, xt, yt *float64, in, out int)
//
// Four output neurons per iteration, four samples per vector lane. Y0..Y3
// are the accumulators for neurons o..o+3; each k step broadcasts one weight
// per neuron and does a separate VMULPD+VADDPD so every lane reproduces the
// scalar "s += w*x" rounding sequence in ascending k order.
TEXT ·denseForwardBlockASM(SB), NOSPLIT, $0-48
	MOVQ w+0(FP), SI
	MOVQ bias+8(FP), BX
	MOVQ xt+16(FP), DX
	MOVQ yt+24(FP), DI
	MOVQ in+32(FP), CX
	MOVQ out+40(FP), R8
	TESTQ CX, CX
	JZ   fdone
	MOVQ CX, R15
	SHLQ $3, R15          // row stride in bytes

fquad:
	CMPQ R8, $4
	JLT  ftail
	MOVQ SI, R9
	LEAQ (SI)(R15*1), R10
	LEAQ (R10)(R15*1), R11
	LEAQ (R11)(R15*1), R12
	VBROADCASTSD 0(BX), Y0
	VBROADCASTSD 8(BX), Y1
	VBROADCASTSD 16(BX), Y2
	VBROADCASTSD 24(BX), Y3
	MOVQ DX, R13
	MOVQ CX, R14

fkloop:
	VMOVUPD (R13), Y4
	VBROADCASTSD (R9), Y5
	VMULPD Y4, Y5, Y5
	VADDPD Y5, Y0, Y0
	VBROADCASTSD (R10), Y5
	VMULPD Y4, Y5, Y5
	VADDPD Y5, Y1, Y1
	VBROADCASTSD (R11), Y5
	VMULPD Y4, Y5, Y5
	VADDPD Y5, Y2, Y2
	VBROADCASTSD (R12), Y5
	VMULPD Y4, Y5, Y5
	VADDPD Y5, Y3, Y3
	ADDQ $8, R9
	ADDQ $8, R10
	ADDQ $8, R11
	ADDQ $8, R12
	ADDQ $32, R13
	DECQ R14
	JNZ  fkloop
	VMOVUPD Y0, (DI)
	VMOVUPD Y1, 32(DI)
	VMOVUPD Y2, 64(DI)
	VMOVUPD Y3, 96(DI)
	LEAQ (SI)(R15*4), SI
	ADDQ $32, BX
	ADDQ $128, DI
	SUBQ $4, R8
	JMP  fquad

ftail:
	TESTQ R8, R8
	JZ   fdone
	VBROADCASTSD 0(BX), Y0
	MOVQ SI, R9
	MOVQ DX, R13
	MOVQ CX, R14

ftk:
	VMOVUPD (R13), Y4
	VBROADCASTSD (R9), Y5
	VMULPD Y4, Y5, Y5
	VADDPD Y5, Y0, Y0
	ADDQ $8, R9
	ADDQ $32, R13
	DECQ R14
	JNZ  ftk
	VMOVUPD Y0, (DI)
	ADDQ R15, SI
	ADDQ $8, BX
	ADDQ $32, DI
	DECQ R8
	JMP  ftail

fdone:
	VZEROUPPER
	RET

// func denseBackwardDXBlockASM(w, gvt, gxt *float64, in, out int)
//
// Two neurons per iteration, lanes across samples. For each k the two
// contributions are added to the gxt accumulator in ascending o order,
// matching the scalar backward's per-sample loop. Quads whose gradient bits
// are all zero are skipped (adding them would be a no-op; the scalar path
// skips exact zeros too).
TEXT ·denseBackwardDXBlockASM(SB), NOSPLIT, $0-40
	MOVQ w+0(FP), SI
	MOVQ gvt+8(FP), BX
	MOVQ gxt+16(FP), DI
	MOVQ in+24(FP), CX
	MOVQ out+32(FP), R8
	TESTQ CX, CX
	JZ   xdone
	MOVQ CX, R15
	SHLQ $3, R15

xpair:
	CMPQ R8, $2
	JLT  xtail
	VMOVUPD (BX), Y1
	VMOVUPD 32(BX), Y2
	VPOR  Y2, Y1, Y6
	VPTEST Y6, Y6
	JZ   xskip2
	MOVQ SI, R9
	LEAQ (SI)(R15*1), R10
	MOVQ DI, R13
	MOVQ CX, R14

xkloop:
	VMOVUPD (R13), Y0
	VBROADCASTSD (R9), Y5
	VMULPD Y1, Y5, Y5
	VADDPD Y5, Y0, Y0
	VBROADCASTSD (R10), Y5
	VMULPD Y2, Y5, Y5
	VADDPD Y5, Y0, Y0
	VMOVUPD Y0, (R13)
	ADDQ $8, R9
	ADDQ $8, R10
	ADDQ $32, R13
	DECQ R14
	JNZ  xkloop

xskip2:
	LEAQ (SI)(R15*2), SI
	ADDQ $64, BX
	SUBQ $2, R8
	JMP  xpair

xtail:
	TESTQ R8, R8
	JZ   xdone
	VMOVUPD (BX), Y1
	VPTEST Y1, Y1
	JZ   xdone
	MOVQ SI, R9
	MOVQ DI, R13
	MOVQ CX, R14

xtk:
	VMOVUPD (R13), Y0
	VBROADCASTSD (R9), Y5
	VMULPD Y1, Y5, Y5
	VADDPD Y5, Y0, Y0
	VMOVUPD Y0, (R13)
	ADDQ $8, R9
	ADDQ $32, R13
	DECQ R14
	JNZ  xtk

xdone:
	VZEROUPPER
	RET

// func denseBackwardDWBlockASM(gw, gvt, x0, x1, x2, x3 *float64, in, in4, out int)
//
// Lanes across k (four consecutive weights), samples added sequentially in
// j order per lane — the same per-sample accumulation order as the scalar
// kernel. in4 is in rounded down to a multiple of 4; the Go wrapper finishes
// the k tail. gw rows are stride in.
TEXT ·denseBackwardDWBlockASM(SB), NOSPLIT, $0-72
	MOVQ gw+0(FP), DI
	MOVQ gvt+8(FP), BX
	MOVQ x0+16(FP), R9
	MOVQ x1+24(FP), R10
	MOVQ x2+32(FP), R11
	MOVQ x3+40(FP), R12
	MOVQ in+48(FP), AX
	MOVQ in4+56(FP), CX
	MOVQ out+64(FP), R8
	TESTQ R8, R8
	JZ   wdone

worow:
	VMOVUPD (BX), Y6
	VPTEST Y6, Y6
	JZ   wskip
	VBROADCASTSD 0(BX), Y0
	VBROADCASTSD 8(BX), Y1
	VBROADCASTSD 16(BX), Y2
	VBROADCASTSD 24(BX), Y3
	XORQ R14, R14         // element offset into the k dimension

wkloop:
	CMPQ R14, CX
	JGE  wskip
	VMOVUPD (DI)(R14*8), Y7
	VMOVUPD (R9)(R14*8), Y5
	VMULPD Y0, Y5, Y5
	VADDPD Y5, Y7, Y7
	VMOVUPD (R10)(R14*8), Y5
	VMULPD Y1, Y5, Y5
	VADDPD Y5, Y7, Y7
	VMOVUPD (R11)(R14*8), Y5
	VMULPD Y2, Y5, Y5
	VADDPD Y5, Y7, Y7
	VMOVUPD (R12)(R14*8), Y5
	VMULPD Y3, Y5, Y5
	VADDPD Y5, Y7, Y7
	VMOVUPD Y7, (DI)(R14*8)
	ADDQ $4, R14
	JMP  wkloop

wskip:
	ADDQ $32, BX
	LEAQ (DI)(AX*8), DI   // next weight row (stride = in elements)
	DECQ R8
	JNZ  worow

wdone:
	VZEROUPPER
	RET

// func adamStepASM(w, grad, m, v *float64, n int, b1, omb1, b2, omb2, c1, c2, rate, eps float64)
//
// Vectorized Adam update over n/4 quads (the Go caller handles the tail).
// Every operation is an IEEE-correctly-rounded elementwise VMULPD / VADDPD /
// VDIVPD / VSQRTPD in the exact expression order of the scalar Step loop, so
// each lane is bit-identical to the scalar update.
TEXT ·adamStepASM(SB), NOSPLIT, $0-104
	MOVQ w+0(FP), DI
	MOVQ grad+8(FP), SI
	MOVQ m+16(FP), R9
	MOVQ v+24(FP), R10
	MOVQ n+32(FP), CX
	VBROADCASTSD b1+40(FP), Y8
	VBROADCASTSD omb1+48(FP), Y9
	VBROADCASTSD b2+56(FP), Y10
	VBROADCASTSD omb2+64(FP), Y11
	VBROADCASTSD c1+72(FP), Y12
	VBROADCASTSD c2+80(FP), Y13
	VBROADCASTSD rate+88(FP), Y14
	VBROADCASTSD eps+96(FP), Y15
	SHRQ $2, CX
	JZ   adone

aloop:
	VMOVUPD (SI), Y4          // g
	VMOVUPD (R9), Y5          // m
	VMULPD Y8, Y5, Y5         // b1*m
	VMULPD Y9, Y4, Y0         // (1-b1)*g
	VADDPD Y0, Y5, Y5         // m'
	VMOVUPD Y5, (R9)
	VMOVUPD (R10), Y6         // v
	VMULPD Y10, Y6, Y6        // b2*v
	VMULPD Y11, Y4, Y0        // (1-b2)*g
	VMULPD Y4, Y0, Y0         // ((1-b2)*g)*g
	VADDPD Y0, Y6, Y6         // v'
	VMOVUPD Y6, (R10)
	VDIVPD Y12, Y5, Y5        // mHat = m'/c1
	VDIVPD Y13, Y6, Y6        // vHat = v'/c2
	VSQRTPD Y6, Y6            // sqrt(vHat)
	VADDPD Y15, Y6, Y6        // + eps
	VMULPD Y14, Y5, Y5        // rate*mHat
	VDIVPD Y6, Y5, Y5         // / den
	VMOVUPD (DI), Y7
	VSUBPD Y5, Y7, Y7         // w -= update
	VMOVUPD Y7, (DI)
	ADDQ $32, SI
	ADDQ $32, R9
	ADDQ $32, R10
	ADDQ $32, DI
	DECQ CX
	JNZ  aloop

adone:
	VZEROUPPER
	RET

// func leakyForwardASM(x, y *float64, n int, alpha float64)
//
// y[i] = x[i] >= 0 ? x[i] : alpha*x[i] for i in [0, n&^3). Elementwise and
// branch-free: a GE_OQ compare mask selects between x and the correctly
// rounded alpha*x, matching the scalar branch exactly (NaN takes the
// alpha*x arm in both).
TEXT ·leakyForwardASM(SB), NOSPLIT, $0-32
	MOVQ x+0(FP), SI
	MOVQ y+8(FP), DI
	MOVQ n+16(FP), CX
	VBROADCASTSD alpha+24(FP), Y3
	VXORPD Y2, Y2, Y2
	SHRQ $2, CX
	JZ   lfdone

lfloop:
	VMOVUPD (SI), Y0
	VMULPD Y3, Y0, Y1         // alpha*x
	VCMPPD $0x1D, Y2, Y0, Y4  // mask = x >= 0
	VBLENDVPD Y4, Y0, Y1, Y0  // mask ? x : alpha*x
	VMOVUPD Y0, (DI)
	ADDQ $32, SI
	ADDQ $32, DI
	DECQ CX
	JNZ  lfloop

lfdone:
	VZEROUPPER
	RET

// func leakyBackwardASM(x, grad, gx *float64, n int, alpha float64)
//
// gx[i] = x[i] >= 0 ? grad[i] : alpha*grad[i] for i in [0, n&^3).
TEXT ·leakyBackwardASM(SB), NOSPLIT, $0-40
	MOVQ x+0(FP), SI
	MOVQ grad+8(FP), BX
	MOVQ gx+16(FP), DI
	MOVQ n+24(FP), CX
	VBROADCASTSD alpha+32(FP), Y3
	VXORPD Y2, Y2, Y2
	SHRQ $2, CX
	JZ   lbdone

lbloop:
	VMOVUPD (SI), Y0
	VMOVUPD (BX), Y5
	VMULPD Y3, Y5, Y1         // alpha*g
	VCMPPD $0x1D, Y2, Y0, Y4  // mask = x >= 0
	VBLENDVPD Y4, Y5, Y1, Y0  // mask ? g : alpha*g
	VMOVUPD Y0, (DI)
	ADDQ $32, SI
	ADDQ $32, BX
	ADDQ $32, DI
	DECQ CX
	JNZ  lbloop

lbdone:
	VZEROUPPER
	RET

// func reluForwardASM(x, y *float64, n int)
//
// y[i] = x[i] > 0 ? x[i] : 0 for i in [0, n&^3). The GT_OQ mask ANDs the
// input, producing +0 in the else arm like the scalar branch.
TEXT ·reluForwardASM(SB), NOSPLIT, $0-24
	MOVQ x+0(FP), SI
	MOVQ y+8(FP), DI
	MOVQ n+16(FP), CX
	VXORPD Y2, Y2, Y2
	SHRQ $2, CX
	JZ   rfdone

rfloop:
	VMOVUPD (SI), Y0
	VCMPPD $0x1E, Y2, Y0, Y4  // mask = x > 0
	VANDPD Y4, Y0, Y0
	VMOVUPD Y0, (DI)
	ADDQ $32, SI
	ADDQ $32, DI
	DECQ CX
	JNZ  rfloop

rfdone:
	VZEROUPPER
	RET

// func reluBackwardASM(x, grad, gx *float64, n int)
//
// gx[i] = x[i] > 0 ? grad[i] : 0 for i in [0, n&^3).
TEXT ·reluBackwardASM(SB), NOSPLIT, $0-32
	MOVQ x+0(FP), SI
	MOVQ grad+8(FP), BX
	MOVQ gx+16(FP), DI
	MOVQ n+24(FP), CX
	VXORPD Y2, Y2, Y2
	SHRQ $2, CX
	JZ   rbdone

rbloop:
	VMOVUPD (SI), Y0
	VMOVUPD (BX), Y5
	VCMPPD $0x1E, Y2, Y0, Y4  // mask = x > 0
	VANDPD Y4, Y5, Y0
	VMOVUPD Y0, (DI)
	ADDQ $32, SI
	ADDQ $32, BX
	ADDQ $32, DI
	DECQ CX
	JNZ  rbloop

rbdone:
	VZEROUPPER
	RET
