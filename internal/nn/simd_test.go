package nn

import (
	"math/rand"
	"testing"
)

// TestSIMDMatchesGeneric proves the AVX2 kernels and the pure-Go kernels
// produce bit-identical results: forward activations, dLoss/dInput, and every
// parameter after several optimizer steps. Widths are chosen to exercise the
// k tail (in % 4 != 0) and the odd-neuron tails of the assembly loops.
func TestSIMDMatchesGeneric(t *testing.T) {
	if !simdAvailable {
		t.Skip("no AVX2 on this machine")
	}
	defer func(v bool) { simdEnabled = v }(simdEnabled)

	build := func(seed int64) *Network {
		rng := rand.New(rand.NewSource(seed))
		return NewNetwork(
			NewDense(9, 13, rng), NewLeakyReLU(),
			NewDense(13, 7, rng), NewTanh(),
			NewDense(7, 5, rng), NewSigmoid(),
		)
	}
	for _, rows := range []int{4, 5, 8, 19, 32} {
		xs, ys := randBatch(rand.New(rand.NewSource(77)), rows, 9, 5)

		simdEnabled = false
		a := build(42)
		optA := NewAdam(0.01)
		var lossA []float64
		for step := 0; step < 5; step++ {
			l, err := a.TrainBatch(xs, ys, MSE{}, optA)
			if err != nil {
				t.Fatal(err)
			}
			lossA = append(lossA, l)
		}
		outA := append([]float64(nil), a.sc.acts[len(a.sc.acts)-1].Row(0)...)

		simdEnabled = true
		b := build(42)
		optB := NewAdam(0.01)
		for step := 0; step < 5; step++ {
			l, err := b.TrainBatch(xs, ys, MSE{}, optB)
			if err != nil {
				t.Fatal(err)
			}
			if l != lossA[step] {
				t.Fatalf("rows=%d step %d: simd loss %v != generic %v", rows, step, l, lossA[step])
			}
		}
		outB := b.sc.acts[len(b.sc.acts)-1].Row(0)
		for i := range outA {
			if outA[i] != outB[i] {
				t.Fatalf("rows=%d: activations diverge at %d: %v vs %v", rows, i, outA[i], outB[i])
			}
		}
		pa, pb := a.params(), b.params()
		for pi := range pa {
			for i := range pa[pi].W {
				if pa[pi].W[i] != pb[pi].W[i] {
					t.Fatalf("rows=%d: param %d diverges at %d: %v vs %v", rows, pi, i, pa[pi].W[i], pb[pi].W[i])
				}
			}
		}
	}
}

// TestSIMDBackwardDataMatchesGeneric checks the data-only backward path
// (generator chaining) is bit-identical between the two kernel sets.
func TestSIMDBackwardDataMatchesGeneric(t *testing.T) {
	if !simdAvailable {
		t.Skip("no AVX2 on this machine")
	}
	defer func(v bool) { simdEnabled = v }(simdEnabled)

	rows := 12
	xs, _ := randBatch(rand.New(rand.NewSource(5)), rows, 9, 5)
	x := NewMat(rows, 9)
	g := NewMat(rows, 5)
	rng := rand.New(rand.NewSource(9))
	for r := 0; r < rows; r++ {
		copy(x.Row(r), xs[r])
		for i := range g.Row(r) {
			g.Row(r)[i] = rng.NormFloat64()
		}
	}

	build := func() *Network {
		rng := rand.New(rand.NewSource(11))
		return NewNetwork(NewDense(9, 14, rng), NewReLU(), NewDense(14, 5, rng))
	}

	simdEnabled = false
	a := build()
	a.BatchForward(x)
	dxA := a.BatchBackwardData(g)
	keep := make([]float64, 0, rows*9)
	for r := 0; r < rows; r++ {
		keep = append(keep, dxA.Row(r)...)
	}

	simdEnabled = true
	b := build()
	b.BatchForward(x)
	dxB := b.BatchBackwardData(g)
	for r := 0; r < rows; r++ {
		row := dxB.Row(r)
		for i, v := range row {
			if keep[r*9+i] != v {
				t.Fatalf("dX diverges at row %d col %d: %v vs %v", r, i, keep[r*9+i], v)
			}
		}
	}
}
