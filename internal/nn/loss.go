package nn

import (
	"fmt"
	"math"
)

// Loss scores a prediction against a target and provides the gradient of the
// loss with respect to the prediction.
type Loss interface {
	Loss(pred, target []float64) float64
	Grad(pred, target []float64) []float64
}

// MSE is the mean squared error ½·mean((p−t)²); its gradient is (p−t)/n.
type MSE struct{}

// Loss implements Loss.
func (MSE) Loss(pred, target []float64) float64 {
	mustLossLens(pred, target)
	var s float64
	for i := range pred {
		d := pred[i] - target[i]
		s += d * d
	}
	return 0.5 * s / float64(len(pred))
}

// Grad implements Loss.
func (MSE) Grad(pred, target []float64) []float64 {
	mustLossLens(pred, target)
	g := make([]float64, len(pred))
	inv := 1 / float64(len(pred))
	for i := range pred {
		g[i] = (pred[i] - target[i]) * inv
	}
	return g
}

// L1 is the mean absolute error used for the autoencoder reconstruction loss
// 𝓛_AE = |q − q̂| in §3.3 of the paper.
type L1 struct{}

// Loss implements Loss.
func (L1) Loss(pred, target []float64) float64 {
	mustLossLens(pred, target)
	var s float64
	for i := range pred {
		s += math.Abs(pred[i] - target[i])
	}
	return s / float64(len(pred))
}

// Grad implements Loss. The subgradient at 0 is taken as 0.
func (L1) Grad(pred, target []float64) []float64 {
	mustLossLens(pred, target)
	g := make([]float64, len(pred))
	inv := 1 / float64(len(pred))
	for i := range pred {
		switch {
		case pred[i] > target[i]:
			g[i] = inv
		case pred[i] < target[i]:
			g[i] = -inv
		}
	}
	return g
}

// SoftmaxCrossEntropy treats the prediction as raw class logits and the
// target as a one-hot (or soft) distribution. It is the classifier loss for
// the 3-class discriminator {gen, new, train} in §3.3.
type SoftmaxCrossEntropy struct{}

// Softmax returns the softmax of logits with the usual max-shift for
// numerical stability.
func Softmax(logits []float64) []float64 {
	if len(logits) == 0 {
		return nil
	}
	return SoftmaxInto(make([]float64, len(logits)), logits)
}

// SoftmaxInto writes the softmax of logits into dst (which must have the same
// length) and returns dst. It allocates nothing; hot paths own dst and reuse
// it across calls.
func SoftmaxInto(dst, logits []float64) []float64 {
	if len(dst) != len(logits) {
		panic(fmt.Sprintf("nn: SoftmaxInto dst length %d vs logits %d", len(dst), len(logits))) //lint:allow panicfree buffer-size mismatch is a programmer error
	}
	if len(logits) == 0 {
		return dst
	}
	maxv := logits[0]
	for _, v := range logits[1:] {
		if v > maxv {
			maxv = v
		}
	}
	var sum float64
	for i, v := range logits {
		e := math.Exp(v - maxv)
		dst[i] = e
		sum += e
	}
	for i := range dst {
		dst[i] /= sum
	}
	return dst
}

// Loss implements Loss: −Σ t_i log softmax(p)_i.
func (SoftmaxCrossEntropy) Loss(pred, target []float64) float64 {
	mustLossLens(pred, target)
	probs := Softmax(pred)
	var s float64
	for i := range probs {
		if target[i] != 0 {
			s -= target[i] * math.Log(math.Max(probs[i], 1e-12))
		}
	}
	return s
}

// Grad implements Loss with the standard softmax+CE fused gradient p−t.
func (SoftmaxCrossEntropy) Grad(pred, target []float64) []float64 {
	mustLossLens(pred, target)
	probs := Softmax(pred)
	g := make([]float64, len(pred))
	for i := range probs {
		g[i] = probs[i] - target[i]
	}
	return g
}

// OneHot returns a one-hot vector of length n with index k set.
func OneHot(n, k int) []float64 {
	if k < 0 || k >= n {
		panic(fmt.Sprintf("nn: OneHot index %d out of range %d", k, n)) //lint:allow panicfree out-of-range class index is a programmer error
	}
	v := make([]float64, n)
	v[k] = 1
	return v
}

func mustLossLens(pred, target []float64) {
	if len(pred) != len(target) {
		panic(fmt.Sprintf("nn: loss length mismatch %d vs %d", len(pred), len(target))) //lint:allow panicfree callers validate batch widths; direct misuse is a programmer error
	}
	if len(pred) == 0 {
		panic("nn: empty loss inputs") //lint:allow panicfree callers validate batch widths; direct misuse is a programmer error
	}
}

// fusedLoss is implemented by losses that can compute value and gradient in a
// single allocation-free pass. dst receives the gradient; tmp is per-worker
// scratch at least as wide as pred (used by softmax). Inputs are
// pre-validated by the batched trainer.
type fusedLoss interface {
	lossGradInto(dst, tmp, pred, target []float64) float64
}

func (MSE) lossGradInto(dst, _, pred, target []float64) float64 {
	inv := 1 / float64(len(pred))
	var s float64
	for i := range pred {
		d := pred[i] - target[i]
		s += d * d
		dst[i] = d * inv
	}
	return 0.5 * s / float64(len(pred))
}

func (L1) lossGradInto(dst, _ []float64, pred, target []float64) float64 {
	inv := 1 / float64(len(pred))
	var s float64
	for i := range pred {
		d := pred[i] - target[i]
		s += math.Abs(d)
		switch {
		case d > 0:
			dst[i] = inv
		case d < 0:
			dst[i] = -inv
		default:
			dst[i] = 0
		}
	}
	return s / float64(len(pred))
}

func (SoftmaxCrossEntropy) lossGradInto(dst, tmp, pred, target []float64) float64 {
	probs := SoftmaxInto(tmp[:len(pred)], pred)
	var s float64
	for i := range probs {
		if target[i] != 0 {
			s -= target[i] * math.Log(math.Max(probs[i], 1e-12))
		}
		dst[i] = probs[i] - target[i]
	}
	return s
}

// lossGradInto computes loss(pred, target) and writes its gradient into dst,
// using the fused path when the loss supports it and falling back to the
// allocating interface methods otherwise.
func lossGradInto(loss Loss, dst, tmp, pred, target []float64) float64 {
	if fl, ok := loss.(fusedLoss); ok {
		return fl.lossGradInto(dst, tmp, pred, target)
	}
	copy(dst, loss.Grad(pred, target))
	return loss.Loss(pred, target)
}
