package nn

import (
	"fmt"
	"math"
)

// Loss scores a prediction against a target and provides the gradient of the
// loss with respect to the prediction.
type Loss interface {
	Loss(pred, target []float64) float64
	Grad(pred, target []float64) []float64
}

// MSE is the mean squared error ½·mean((p−t)²); its gradient is (p−t)/n.
type MSE struct{}

// Loss implements Loss.
func (MSE) Loss(pred, target []float64) float64 {
	mustLossLens(pred, target)
	var s float64
	for i := range pred {
		d := pred[i] - target[i]
		s += d * d
	}
	return 0.5 * s / float64(len(pred))
}

// Grad implements Loss.
func (MSE) Grad(pred, target []float64) []float64 {
	mustLossLens(pred, target)
	g := make([]float64, len(pred))
	inv := 1 / float64(len(pred))
	for i := range pred {
		g[i] = (pred[i] - target[i]) * inv
	}
	return g
}

// L1 is the mean absolute error used for the autoencoder reconstruction loss
// 𝓛_AE = |q − q̂| in §3.3 of the paper.
type L1 struct{}

// Loss implements Loss.
func (L1) Loss(pred, target []float64) float64 {
	mustLossLens(pred, target)
	var s float64
	for i := range pred {
		s += math.Abs(pred[i] - target[i])
	}
	return s / float64(len(pred))
}

// Grad implements Loss. The subgradient at 0 is taken as 0.
func (L1) Grad(pred, target []float64) []float64 {
	mustLossLens(pred, target)
	g := make([]float64, len(pred))
	inv := 1 / float64(len(pred))
	for i := range pred {
		switch {
		case pred[i] > target[i]:
			g[i] = inv
		case pred[i] < target[i]:
			g[i] = -inv
		}
	}
	return g
}

// SoftmaxCrossEntropy treats the prediction as raw class logits and the
// target as a one-hot (or soft) distribution. It is the classifier loss for
// the 3-class discriminator {gen, new, train} in §3.3.
type SoftmaxCrossEntropy struct{}

// Softmax returns the softmax of logits with the usual max-shift for
// numerical stability.
func Softmax(logits []float64) []float64 {
	if len(logits) == 0 {
		return nil
	}
	maxv := logits[0]
	for _, v := range logits[1:] {
		if v > maxv {
			maxv = v
		}
	}
	out := make([]float64, len(logits))
	var sum float64
	for i, v := range logits {
		e := math.Exp(v - maxv)
		out[i] = e
		sum += e
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// Loss implements Loss: −Σ t_i log softmax(p)_i.
func (SoftmaxCrossEntropy) Loss(pred, target []float64) float64 {
	mustLossLens(pred, target)
	probs := Softmax(pred)
	var s float64
	for i := range probs {
		if target[i] != 0 {
			s -= target[i] * math.Log(math.Max(probs[i], 1e-12))
		}
	}
	return s
}

// Grad implements Loss with the standard softmax+CE fused gradient p−t.
func (SoftmaxCrossEntropy) Grad(pred, target []float64) []float64 {
	mustLossLens(pred, target)
	probs := Softmax(pred)
	g := make([]float64, len(pred))
	for i := range probs {
		g[i] = probs[i] - target[i]
	}
	return g
}

// OneHot returns a one-hot vector of length n with index k set.
func OneHot(n, k int) []float64 {
	if k < 0 || k >= n {
		panic(fmt.Sprintf("nn: OneHot index %d out of range %d", k, n))
	}
	v := make([]float64, n)
	v[k] = 1
	return v
}

func mustLossLens(pred, target []float64) {
	if len(pred) != len(target) {
		panic(fmt.Sprintf("nn: loss length mismatch %d vs %d", len(pred), len(target)))
	}
	if len(pred) == 0 {
		panic("nn: empty loss inputs")
	}
}
