package nn

import (
	"encoding/json"
	"fmt"
	"io"
)

// Network serialization: a compact JSON format recording each layer's kind
// and parameters, so trained CE models and Warper components can be
// persisted across process restarts.

type layerJSON struct {
	Kind   string    `json:"kind"`
	In     int       `json:"in,omitempty"`
	Out    int       `json:"out,omitempty"`
	Alpha  float64   `json:"alpha,omitempty"`
	Weight []float64 `json:"weight,omitempty"`
	Bias   []float64 `json:"bias,omitempty"`
}

type networkJSON struct {
	Layers []layerJSON `json:"layers"`
}

// Save writes the network to w as JSON.
func (n *Network) Save(w io.Writer) error {
	var out networkJSON
	for _, l := range n.Layers {
		switch v := l.(type) {
		case *Dense:
			out.Layers = append(out.Layers, layerJSON{
				Kind: "dense", In: v.In, Out: v.Out,
				Weight: v.Weight.W, Bias: v.Bias.W,
			})
		case *LeakyReLU:
			out.Layers = append(out.Layers, layerJSON{Kind: "leakyrelu", Alpha: v.Alpha})
		case *ReLU:
			out.Layers = append(out.Layers, layerJSON{Kind: "relu"})
		case *Sigmoid:
			out.Layers = append(out.Layers, layerJSON{Kind: "sigmoid"})
		case *Tanh:
			out.Layers = append(out.Layers, layerJSON{Kind: "tanh"})
		default:
			return fmt.Errorf("nn: cannot serialize layer of type %T", l)
		}
	}
	return json.NewEncoder(w).Encode(out)
}

// Load reads a network previously written by Save.
func Load(r io.Reader) (*Network, error) {
	var in networkJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("nn: decode: %w", err)
	}
	net := &Network{}
	for i, lj := range in.Layers {
		switch lj.Kind {
		case "dense":
			if lj.In <= 0 || lj.Out <= 0 {
				return nil, fmt.Errorf("nn: layer %d: bad dense dims %dx%d", i, lj.In, lj.Out)
			}
			if len(lj.Weight) != lj.In*lj.Out || len(lj.Bias) != lj.Out {
				return nil, fmt.Errorf("nn: layer %d: weight/bias size mismatch", i)
			}
			d := &Dense{In: lj.In, Out: lj.Out, Weight: newParam(lj.In * lj.Out), Bias: newParam(lj.Out)}
			copy(d.Weight.W, lj.Weight)
			copy(d.Bias.W, lj.Bias)
			net.Layers = append(net.Layers, d)
		case "leakyrelu":
			alpha := lj.Alpha
			if alpha == 0 {
				alpha = 0.01
			}
			net.Layers = append(net.Layers, &LeakyReLU{Alpha: alpha})
		case "relu":
			net.Layers = append(net.Layers, &ReLU{})
		case "sigmoid":
			net.Layers = append(net.Layers, &Sigmoid{})
		case "tanh":
			net.Layers = append(net.Layers, &Tanh{})
		default:
			return nil, fmt.Errorf("nn: layer %d: unknown kind %q", i, lj.Kind)
		}
	}
	return net, nil
}
