package nn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// numericGrad estimates dLoss/dParam by central finite differences for the
// network loss on a single example.
func numericGrad(n *Network, x, y []float64, loss Loss, p *Param, i int) float64 {
	const h = 1e-5
	orig := p.W[i]
	p.W[i] = orig + h
	lp := loss.Loss(n.Forward(x), y)
	p.W[i] = orig - h
	lm := loss.Loss(n.Forward(x), y)
	p.W[i] = orig
	return (lp - lm) / (2 * h)
}

func checkGradients(t *testing.T, n *Network, loss Loss, in, out int, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	x := make([]float64, in)
	y := make([]float64, out)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	if _, isCE := loss.(SoftmaxCrossEntropy); isCE {
		copy(y, OneHot(out, rng.Intn(out)))
	} else {
		for i := range y {
			y[i] = rng.NormFloat64()
		}
	}
	n.ZeroGrad()
	pred := n.Forward(x)
	n.Backward(loss.Grad(pred, y))
	for pi, p := range n.Params() {
		for i := 0; i < len(p.W); i += 7 { // sample every 7th weight for speed
			want := numericGrad(n, x, y, loss, p, i)
			got := p.G[i]
			if math.Abs(got-want) > 1e-4*(1+math.Abs(want)) {
				t.Fatalf("param %d idx %d: analytic grad %v, numeric %v", pi, i, got, want)
			}
		}
	}
}

func TestGradCheckDenseMSE(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := NewNetwork(NewDense(4, 5, rng), NewDense(5, 3, rng))
	checkGradients(t, n, MSE{}, 4, 3, 10)
}

func TestGradCheckMLPLeakyReLUMSE(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := MLP(6, 8, 2, 2, rng)
	checkGradients(t, n, MSE{}, 6, 2, 11)
}

func TestGradCheckSigmoidL1(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := NewNetwork(NewDense(3, 6, rng), NewSigmoid(), NewDense(6, 3, rng), NewSigmoid())
	checkGradients(t, n, L1{}, 3, 3, 12)
}

func TestGradCheckTanhMSE(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := NewNetwork(NewDense(3, 5, rng), NewTanh(), NewDense(5, 2, rng))
	checkGradients(t, n, MSE{}, 3, 2, 13)
}

func TestGradCheckReLUMSE(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	n := NewNetwork(NewDense(4, 6, rng), NewReLU(), NewDense(6, 2, rng))
	checkGradients(t, n, MSE{}, 4, 2, 16)
}

func TestGradCheckCrossEntropy(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := NewNetwork(NewDense(5, 8, rng), NewLeakyReLU(), NewDense(8, 3, rng))
	checkGradients(t, n, SoftmaxCrossEntropy{}, 5, 3, 14)
}

func TestSoftmaxSumsToOne(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 || len(raw) > 16 {
			return true
		}
		for _, v := range raw {
			if math.IsNaN(v) || math.Abs(v) > 500 {
				return true
			}
		}
		p := Softmax(raw)
		var s float64
		for _, v := range p {
			if v < 0 || v > 1 {
				return false
			}
			s += v
		}
		return math.Abs(s-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(5))}); err != nil {
		t.Error(err)
	}
}

func TestSoftmaxStability(t *testing.T) {
	p := Softmax([]float64{1000, 1001, 1002})
	for _, v := range p {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("softmax overflowed: %v", p)
		}
	}
	if p[2] < p[1] || p[1] < p[0] {
		t.Errorf("ordering lost: %v", p)
	}
}

func TestXORLearnable(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n := MLP(2, 8, 2, 1, rng)
	xs := [][]float64{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	ys := [][]float64{{0}, {1}, {1}, {0}}
	opt := NewAdam(0.01)
	var loss float64
	for e := 0; e < 500; e++ {
		var err error
		loss, err = n.TrainBatch(xs, ys, MSE{}, opt)
		if err != nil {
			t.Fatalf("TrainBatch: %v", err)
		}
	}
	if loss > 0.01 {
		t.Fatalf("XOR did not converge, loss=%v", loss)
	}
	for i, x := range xs {
		p := n.Forward(x)[0]
		if math.Abs(p-ys[i][0]) > 0.25 {
			t.Errorf("xor(%v) = %v, want %v", x, p, ys[i][0])
		}
	}
}

func TestLinearRegressionWithSGD(t *testing.T) {
	// y = 2x + 1 is exactly representable by a single Dense layer.
	rng := rand.New(rand.NewSource(7))
	n := NewNetwork(NewDense(1, 1, rng))
	var xs, ys [][]float64
	for i := 0; i < 64; i++ {
		x := rng.Float64()*4 - 2
		xs = append(xs, []float64{x})
		ys = append(ys, []float64{2*x + 1})
	}
	loss, err := n.Fit(xs, ys, MSE{}, NewSGD(0.1), 200, 16, rng)
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if loss > 1e-4 {
		t.Fatalf("linear fit loss = %v", loss)
	}
	d := n.Layers[0].(*Dense)
	if math.Abs(d.Weight.W[0]-2) > 0.05 || math.Abs(d.Bias.W[0]-1) > 0.05 {
		t.Errorf("learned w=%v b=%v, want 2, 1", d.Weight.W[0], d.Bias.W[0])
	}
}

func TestCloneIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	n := MLP(3, 4, 1, 2, rng)
	c := n.Clone()
	// Forward returns a reused buffer, so snapshot it before training.
	before := append([]float64(nil), c.Forward([]float64{1, 2, 3})...)
	// Train the original; clone output must not change.
	xs := [][]float64{{1, 2, 3}}
	ys := [][]float64{{0, 0}}
	for i := 0; i < 10; i++ {
		if _, err := n.TrainBatch(xs, ys, MSE{}, NewSGD(0.1)); err != nil {
			t.Fatalf("TrainBatch: %v", err)
		}
	}
	after := c.Forward([]float64{1, 2, 3})
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("clone shares parameters with original")
		}
	}
}

// TestCloneIntoCopiesParams pins the in-place clone path used by serving
// replica refreshes: same-shape networks copy parameters exactly, and the
// destination stays independent afterwards.
func TestCloneIntoCopiesParams(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	src := MLP(3, 4, 1, 2, rng)
	dst := MLP(3, 4, 1, 2, rng) // same shape, different weights
	x := []float64{1, 2, 3}
	want := append([]float64(nil), src.Forward(x)...)
	if !src.CloneInto(dst) {
		t.Fatal("CloneInto refused same-shape networks")
	}
	got := append([]float64(nil), dst.Forward(x)...)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dst output %v, want %v", got, want)
		}
	}
	// Training the source must not move the destination.
	xs := [][]float64{x}
	ys := [][]float64{{0, 0}}
	for i := 0; i < 10; i++ {
		if _, err := src.TrainBatch(xs, ys, MSE{}, NewSGD(0.1)); err != nil {
			t.Fatalf("TrainBatch: %v", err)
		}
	}
	after := dst.Forward(x)
	for i := range want {
		if after[i] != want[i] {
			t.Fatal("CloneInto left shared parameter state")
		}
	}
}

func TestCloneIntoRejectsShapeMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	src := MLP(3, 4, 1, 2, rng)
	if src.CloneInto(nil) {
		t.Error("CloneInto accepted nil")
	}
	if src.CloneInto(src) {
		t.Error("CloneInto accepted the receiver itself")
	}
	if src.CloneInto(MLP(3, 8, 1, 2, rng)) {
		t.Error("CloneInto accepted a different hidden width")
	}
	if src.CloneInto(MLP(3, 4, 2, 2, rng)) {
		t.Error("CloneInto accepted a different depth")
	}
}

func TestSGDDecaySchedule(t *testing.T) {
	opt := NewPaperSGD(1e-3)
	for i := 0; i < 10; i++ {
		opt.EndEpoch()
	}
	if math.Abs(opt.LR()-5e-4) > 1e-12 {
		t.Errorf("LR after 10 epochs = %v, want 5e-4", opt.LR())
	}
	for i := 0; i < 10; i++ {
		opt.EndEpoch()
	}
	if math.Abs(opt.LR()-2.5e-4) > 1e-12 {
		t.Errorf("LR after 20 epochs = %v, want 2.5e-4", opt.LR())
	}
}

func TestOneHot(t *testing.T) {
	v := OneHot(3, 1)
	if v[0] != 0 || v[1] != 1 || v[2] != 0 {
		t.Errorf("OneHot = %v", v)
	}
}

func TestOneHotOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	OneHot(3, 3)
}

func TestL1LossIdentities(t *testing.T) {
	l := L1{}
	if got := l.Loss([]float64{1, 2}, []float64{1, 2}); got != 0 {
		t.Errorf("L1 of equal = %v", got)
	}
	if got := l.Loss([]float64{0, 0}, []float64{1, -3}); got != 2 {
		t.Errorf("L1 = %v, want 2", got)
	}
	g := l.Grad([]float64{2, 0, 1}, []float64{1, 1, 1})
	if g[0] <= 0 || g[1] >= 0 || g[2] != 0 {
		t.Errorf("L1 grad signs wrong: %v", g)
	}
}

func TestNetworkSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := MLP(7, 128, 3, 4, rng)
	if n.InSize() != 7 || n.OutSize() != 4 {
		t.Errorf("sizes = %d,%d", n.InSize(), n.OutSize())
	}
	want := (7*128 + 128) + (128*128+128)*2 + (128*4 + 4)
	if n.NumParams() != want {
		t.Errorf("NumParams = %d, want %d", n.NumParams(), want)
	}
}

func TestDenseRejectsBadInput(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	d := NewDense(3, 2, rng)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on wrong input size")
		}
	}()
	d.Forward([]float64{1, 2})
}

func TestTrainBatchEmptyIsNoop(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := MLP(2, 4, 1, 1, rng)
	got, err := n.TrainBatch(nil, nil, MSE{}, NewSGD(0.1))
	if err != nil {
		t.Fatalf("TrainBatch: %v", err)
	}
	if got != 0 {
		t.Errorf("empty batch loss = %v", got)
	}
}

func TestAdamConvergesOnIllConditioned(t *testing.T) {
	// Loss surface with wildly different curvatures per dimension; Adam's
	// per-coordinate scaling should still drive the loss near zero.
	rng := rand.New(rand.NewSource(12))
	n := NewNetwork(NewDense(2, 2, rng))
	xs := [][]float64{{100, 0}, {0, 0.01}}
	ys := [][]float64{{300, 0}, {0, -0.02}}
	opt := NewAdam(0.05)
	var l float64
	for i := 0; i < 3000; i++ {
		var err error
		l, err = n.TrainBatch(xs, ys, MSE{}, opt)
		if err != nil {
			t.Fatalf("TrainBatch: %v", err)
		}
	}
	if l > 1e-3 {
		t.Errorf("Adam final loss = %v, want < 1e-3", l)
	}
}
