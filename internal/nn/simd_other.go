//go:build !amd64

package nn

// Non-amd64 builds use the pure-Go batched kernels, which the SIMD paths are
// bit-identical to by construction.

var simdAvailable = false
var simdEnabled = false

func denseForwardBlockASM(w, bias, xt, yt *float64, in, out int)      { panic("nn: no simd") } //lint:allow panicfree unreachable: simdEnabled is false on this platform
func denseBackwardDXBlockASM(w, gvt, gxt *float64, in, out int)       { panic("nn: no simd") } //lint:allow panicfree unreachable: simdEnabled is false on this platform
func denseBackwardDWBlockASM(gw, gvt, x0, x1, x2, x3 *float64, in, in4, out int) {
	panic("nn: no simd") //lint:allow panicfree unreachable: simdEnabled is false on this platform
}

func adamStepASM(w, grad, m, v *float64, n int, b1, omb1, b2, omb2, c1, c2, rate, eps float64) {
	panic("nn: no simd") //lint:allow panicfree unreachable: simdEnabled is false on this platform
}

func leakyForwardASM(x, y *float64, n int, alpha float64) { panic("nn: no simd") } //lint:allow panicfree unreachable: simdEnabled is false on this platform
func leakyBackwardASM(x, grad, gx *float64, n int, alpha float64) {
	panic("nn: no simd") //lint:allow panicfree unreachable: simdEnabled is false on this platform
}
func reluForwardASM(x, y *float64, n int)      { panic("nn: no simd") } //lint:allow panicfree unreachable: simdEnabled is false on this platform
func reluBackwardASM(x, grad, gx *float64, n int) {
	panic("nn: no simd") //lint:allow panicfree unreachable: simdEnabled is false on this platform
}
