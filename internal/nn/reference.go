package nn

import "math"

// This file preserves the original per-sample training step — one heap
// allocation per layer per sample, sequential gradient accumulation — exactly
// as the tree shipped before the batched compute core landed. It is the
// oracle for the batched-equivalence tests and the baseline that the recorded
// benchmark trajectory (BENCH_PR4.json) measures speedups against. It must
// not be "optimized": its whole value is being the slow, known-good original.

// ReferenceTrainBatch performs one optimizer step on a minibatch using the
// original allocating per-sample forward/backward, returning the mean loss.
func ReferenceTrainBatch(n *Network, xs, ys [][]float64, loss Loss, opt Optimizer) float64 {
	if len(xs) == 0 {
		return 0
	}
	n.ZeroGrad()
	var total float64
	for i := range xs {
		acts := referenceForward(n, xs[i])
		pred := acts[len(acts)-1]
		total += loss.Loss(pred, ys[i])
		referenceBackward(n, acts, loss.Grad(pred, ys[i]))
	}
	scaleGrads(n.Params(), 1/float64(len(xs)))
	opt.Step(n.Params())
	return total / float64(len(xs))
}

// ReferenceForward runs one sample through the network with the original
// allocating per-layer code and returns the output.
func ReferenceForward(n *Network, x []float64) []float64 {
	acts := referenceForward(n, x)
	return acts[len(acts)-1]
}

// referenceForward returns the activation at every layer boundary;
// acts[0] is the input, acts[len(Layers)] the output.
func referenceForward(n *Network, x []float64) [][]float64 {
	acts := make([][]float64, 1, len(n.Layers)+1)
	acts[0] = x
	for _, l := range n.Layers {
		switch t := l.(type) {
		case *Dense:
			y := make([]float64, t.Out)
			for o := 0; o < t.Out; o++ {
				s := t.Bias.W[o]
				row := t.Weight.W[o*t.In : (o+1)*t.In]
				for i, xi := range x {
					s += row[i] * xi
				}
				y[o] = s
			}
			x = y
		case *LeakyReLU:
			y := make([]float64, len(x))
			for i, v := range x {
				if v >= 0 {
					y[i] = v
				} else {
					y[i] = t.Alpha * v
				}
			}
			x = y
		case *ReLU:
			y := make([]float64, len(x))
			for i, v := range x {
				if v > 0 {
					y[i] = v
				}
			}
			x = y
		case *Sigmoid:
			y := make([]float64, len(x))
			for i, v := range x {
				y[i] = 1 / (1 + math.Exp(-v))
			}
			x = y
		case *Tanh:
			y := make([]float64, len(x))
			for i, v := range x {
				y[i] = math.Tanh(v)
			}
			x = y
		default:
			x = l.Forward(x)
		}
		acts = append(acts, x)
	}
	return acts
}

// referenceBackward propagates grad through the stack with the original
// allocating per-layer code, accumulating parameter gradients.
func referenceBackward(n *Network, acts [][]float64, grad []float64) {
	for li := len(n.Layers) - 1; li >= 0; li-- {
		in := acts[li]
		switch t := n.Layers[li].(type) {
		case *Dense:
			gx := make([]float64, t.In)
			for o := 0; o < t.Out; o++ {
				g := grad[o]
				if g == 0 {
					continue
				}
				t.Bias.G[o] += g
				row := t.Weight.W[o*t.In : (o+1)*t.In]
				grow := t.Weight.G[o*t.In : (o+1)*t.In]
				for i := 0; i < t.In; i++ {
					grow[i] += g * in[i]
					gx[i] += g * row[i]
				}
			}
			grad = gx
		case *LeakyReLU:
			gx := make([]float64, len(grad))
			for i, g := range grad {
				if in[i] >= 0 {
					gx[i] = g
				} else {
					gx[i] = t.Alpha * g
				}
			}
			grad = gx
		case *ReLU:
			gx := make([]float64, len(grad))
			for i, g := range grad {
				if in[i] > 0 {
					gx[i] = g
				}
			}
			grad = gx
		case *Sigmoid:
			out := acts[li+1]
			gx := make([]float64, len(grad))
			for i, g := range grad {
				s := out[i]
				gx[i] = g * s * (1 - s)
			}
			grad = gx
		case *Tanh:
			out := acts[li+1]
			gx := make([]float64, len(grad))
			for i, g := range grad {
				v := out[i]
				gx[i] = g * (1 - v*v)
			}
			grad = gx
		default:
			grad = n.Layers[li].Backward(grad)
		}
	}
}
