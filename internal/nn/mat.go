package nn

// Mat is a row-major matrix view over a flat backing slice: row r occupies
// Data[r*Stride : r*Stride+Cols]. A Stride wider than Cols lets a Mat view a
// column slice of another matrix without copying (the batched GAN steps use
// this to peel the featurization columns off an encoder-input gradient).
type Mat struct {
	Rows, Cols int
	Stride     int
	Data       []float64
}

// NewMat allocates a dense Rows×Cols matrix.
func NewMat(rows, cols int) Mat {
	return Mat{Rows: rows, Cols: cols, Stride: cols, Data: make([]float64, rows*cols)}
}

// Row returns row r as a slice of length Cols.
func (m Mat) Row(r int) []float64 {
	off := r * m.Stride
	return m.Data[off : off+m.Cols : off+m.Cols]
}

// View returns a view of the first rows rows and cols columns. The backing
// array is shared.
func (m Mat) View(rows, cols int) Mat {
	return Mat{Rows: rows, Cols: cols, Stride: m.Stride, Data: m.Data}
}

// CopyFromRows fills the matrix from a slice of equal-length rows.
func (m Mat) CopyFromRows(rows [][]float64) {
	for r, src := range rows {
		copy(m.Row(r), src)
	}
}

// matBuf is a growable backing store for a Mat, reused across batches so the
// steady-state training loop never allocates.
type matBuf struct {
	data []float64
}

// mat shapes the buffer as a rows×cols matrix, growing the backing array
// only when capacity is exceeded.
func (b *matBuf) mat(rows, cols int) Mat {
	need := rows * cols
	if cap(b.data) < need {
		b.data = make([]float64, need)
	}
	return Mat{Rows: rows, Cols: cols, Stride: cols, Data: b.data[:need]}
}
