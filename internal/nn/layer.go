// Package nn is a small, dependency-free neural-network engine sufficient to
// reproduce every learned component in the Warper paper: the encoder 𝔼,
// generator 𝔾 and discriminator 𝔻 from Table 3, the LM-mlp cardinality
// estimator and the (simplified) MSCN model. It provides fully-connected
// layers, LeakyReLU/ReLU/Sigmoid/Tanh activations, L1/MSE/softmax-cross-entropy
// losses, SGD-with-momentum and Adam optimizers, and per-sample backprop with
// minibatch gradient accumulation.
//
// Training in the paper runs on CPU with tiny models (3×FC-128), so a clear,
// allocation-light scalar implementation is plenty fast.
package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// Param is one trainable tensor (stored flat) with its gradient accumulator.
type Param struct {
	W []float64 // values
	G []float64 // accumulated gradients
}

func newParam(n int) *Param { return &Param{W: make([]float64, n), G: make([]float64, n)} }

// ZeroGrad clears the gradient accumulator.
func (p *Param) ZeroGrad() {
	for i := range p.G {
		p.G[i] = 0
	}
}

// Layer is a differentiable network stage. Forward must be called before
// Backward; Backward receives dLoss/dOutput and returns dLoss/dInput while
// accumulating parameter gradients.
type Layer interface {
	Forward(x []float64) []float64
	Backward(gradOut []float64) []float64
	Params() []*Param
	// Clone returns a deep copy with independent parameters.
	Clone() Layer
	// OutSize reports the output width for a given input width.
	OutSize(in int) int
}

// Dense is a fully connected layer: y = W·x + b.
//
// Forward and Backward return buffers owned by the layer, reused across
// calls: a result is valid until the next call on the same layer; callers
// that retain it must copy.
type Dense struct {
	In, Out int
	Weight  *Param // Out×In, row-major
	Bias    *Param // Out

	lastIn []float64
	out    []float64
	gx     []float64
}

// NewDense builds a Dense layer with Xavier/Glorot-uniform initialization.
func NewDense(in, out int, rng *rand.Rand) *Dense {
	if in <= 0 || out <= 0 {
		panic(fmt.Sprintf("nn: invalid Dense dims %d->%d", in, out)) //lint:allow panicfree constructor dims are compile-time constants in practice
	}
	d := &Dense{In: in, Out: out, Weight: newParam(in * out), Bias: newParam(out)}
	limit := math.Sqrt(6.0 / float64(in+out))
	for i := range d.Weight.W {
		d.Weight.W[i] = (rng.Float64()*2 - 1) * limit
	}
	return d
}

// Forward computes W·x + b, caching x for the backward pass. The returned
// slice is owned by the layer and reused on the next call.
func (d *Dense) Forward(x []float64) []float64 {
	if len(x) != d.In {
		panic(fmt.Sprintf("nn: Dense expects input %d, got %d", d.In, len(x))) //lint:allow panicfree shape mismatch is a programmer error
	}
	d.lastIn = x
	if d.out == nil {
		d.out = make([]float64, d.Out) //lint:allow hotpathalloc first-call lazy buffer; reused on every later forward
	}
	y := d.out
	for o := 0; o < d.Out; o++ {
		s := d.Bias.W[o]
		row := d.Weight.W[o*d.In : (o+1)*d.In]
		for i, xi := range x {
			s += row[i] * xi
		}
		y[o] = s
	}
	return y
}

// Backward accumulates dL/dW and dL/db and returns dL/dx (a layer-owned
// buffer, reused on the next call).
func (d *Dense) Backward(gradOut []float64) []float64 {
	if len(gradOut) != d.Out {
		panic(fmt.Sprintf("nn: Dense backward expects grad %d, got %d", d.Out, len(gradOut))) //lint:allow panicfree shape mismatch is a programmer error
	}
	if d.gx == nil {
		d.gx = make([]float64, d.In)
	}
	gx := d.gx
	for i := range gx {
		gx[i] = 0
	}
	for o := 0; o < d.Out; o++ {
		g := gradOut[o]
		if g == 0 {
			continue
		}
		d.Bias.G[o] += g
		row := d.Weight.W[o*d.In : (o+1)*d.In]
		grow := d.Weight.G[o*d.In : (o+1)*d.In]
		for i := 0; i < d.In; i++ {
			grow[i] += g * d.lastIn[i]
			gx[i] += g * row[i]
		}
	}
	return gx
}

// Params returns the weight and bias tensors.
func (d *Dense) Params() []*Param { return []*Param{d.Weight, d.Bias} }

// Clone returns a deep copy of the layer.
func (d *Dense) Clone() Layer {
	c := &Dense{In: d.In, Out: d.Out, Weight: newParam(d.In * d.Out), Bias: newParam(d.Out)}
	copy(c.Weight.W, d.Weight.W)
	copy(c.Bias.W, d.Bias.W)
	return c
}

// OutSize implements Layer.
func (d *Dense) OutSize(int) int { return d.Out }

// ensureLen returns buf resized to n, reallocating only when capacity is
// exceeded. It is the growth primitive behind the layer-owned buffers.
func ensureLen(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n) //lint:allow hotpathalloc grow-once primitive; steady state returns the resliced buffer
	}
	return buf[:n]
}

// LeakyReLU applies max(x, alpha*x) elementwise. The paper's Table 3 uses
// leaky ReLU between every pair of FC layers. Forward/Backward results are
// layer-owned buffers, reused across calls.
type LeakyReLU struct {
	Alpha  float64
	lastIn []float64
	out    []float64
	gx     []float64
}

// NewLeakyReLU returns a LeakyReLU with the conventional slope 0.01.
func NewLeakyReLU() *LeakyReLU { return &LeakyReLU{Alpha: 0.01} }

// Forward implements Layer.
func (l *LeakyReLU) Forward(x []float64) []float64 {
	l.lastIn = x
	l.out = ensureLen(l.out, len(x))
	y := l.out
	for i, v := range x {
		if v >= 0 {
			y[i] = v
		} else {
			y[i] = l.Alpha * v
		}
	}
	return y
}

// Backward implements Layer.
func (l *LeakyReLU) Backward(gradOut []float64) []float64 {
	l.gx = ensureLen(l.gx, len(gradOut))
	gx := l.gx
	for i, g := range gradOut {
		if l.lastIn[i] >= 0 {
			gx[i] = g
		} else {
			gx[i] = l.Alpha * g
		}
	}
	return gx
}

// Params implements Layer (no parameters).
func (l *LeakyReLU) Params() []*Param { return nil }

// Clone implements Layer.
func (l *LeakyReLU) Clone() Layer { return &LeakyReLU{Alpha: l.Alpha} }

// OutSize implements Layer.
func (l *LeakyReLU) OutSize(in int) int { return in }

// ReLU applies max(0, x) elementwise. Forward/Backward results are
// layer-owned buffers, reused across calls.
type ReLU struct {
	lastIn []float64
	out    []float64
	gx     []float64
}

// NewReLU returns a ReLU activation.
func NewReLU() *ReLU { return &ReLU{} }

// Forward implements Layer.
func (l *ReLU) Forward(x []float64) []float64 {
	l.lastIn = x
	l.out = ensureLen(l.out, len(x))
	y := l.out
	for i, v := range x {
		if v > 0 {
			y[i] = v
		} else {
			y[i] = 0
		}
	}
	return y
}

// Backward implements Layer.
func (l *ReLU) Backward(gradOut []float64) []float64 {
	l.gx = ensureLen(l.gx, len(gradOut))
	gx := l.gx
	for i, g := range gradOut {
		if l.lastIn[i] > 0 {
			gx[i] = g
		} else {
			gx[i] = 0
		}
	}
	return gx
}

// Params implements Layer.
func (l *ReLU) Params() []*Param { return nil }

// Clone implements Layer.
func (l *ReLU) Clone() Layer { return &ReLU{} }

// OutSize implements Layer.
func (l *ReLU) OutSize(in int) int { return in }

// Sigmoid applies 1/(1+e^-x) elementwise. Used to keep generated predicate
// featurizations inside the unit box. Forward/Backward results are
// layer-owned buffers, reused across calls.
type Sigmoid struct {
	lastOut []float64
	gx      []float64
}

// NewSigmoid returns a Sigmoid activation.
func NewSigmoid() *Sigmoid { return &Sigmoid{} }

// Forward implements Layer.
func (l *Sigmoid) Forward(x []float64) []float64 {
	l.lastOut = ensureLen(l.lastOut, len(x))
	y := l.lastOut
	for i, v := range x {
		y[i] = 1 / (1 + math.Exp(-v))
	}
	return y
}

// Backward implements Layer.
func (l *Sigmoid) Backward(gradOut []float64) []float64 {
	l.gx = ensureLen(l.gx, len(gradOut))
	gx := l.gx
	for i, g := range gradOut {
		s := l.lastOut[i]
		gx[i] = g * s * (1 - s)
	}
	return gx
}

// Params implements Layer.
func (l *Sigmoid) Params() []*Param { return nil }

// Clone implements Layer.
func (l *Sigmoid) Clone() Layer { return &Sigmoid{} }

// OutSize implements Layer.
func (l *Sigmoid) OutSize(in int) int { return in }

// Tanh applies the hyperbolic tangent elementwise. Forward/Backward results
// are layer-owned buffers, reused across calls.
type Tanh struct {
	lastOut []float64
	gx      []float64
}

// NewTanh returns a Tanh activation.
func NewTanh() *Tanh { return &Tanh{} }

// Forward implements Layer.
func (l *Tanh) Forward(x []float64) []float64 {
	l.lastOut = ensureLen(l.lastOut, len(x))
	y := l.lastOut
	for i, v := range x {
		y[i] = math.Tanh(v)
	}
	return y
}

// Backward implements Layer.
func (l *Tanh) Backward(gradOut []float64) []float64 {
	l.gx = ensureLen(l.gx, len(gradOut))
	gx := l.gx
	for i, g := range gradOut {
		t := l.lastOut[i]
		gx[i] = g * (1 - t*t)
	}
	return gx
}

// Params implements Layer.
func (l *Tanh) Params() []*Param { return nil }

// Clone implements Layer.
func (l *Tanh) Clone() Layer { return &Tanh{} }

// OutSize implements Layer.
func (l *Tanh) OutSize(in int) int { return in }
