package nn

import (
	"fmt"
	"math"

	"warper/internal/parallel"
)

// shardRows is the fixed shard granularity for data-parallel training and
// batched inference. The shard layout depends only on the batch size — never
// on the worker count — and the shard reduction below runs in ascending shard
// order, so seeded runs are byte-identical at any parallel.SetWorkers setting.
const shardRows = 8

// Batch operation modes dispatched through the scratch runner.
const (
	modeForward = iota
	modeTrain
	modeBackwardAcc
	modeBackwardData
)

// scratch is the per-network reusable arena for batched compute: full-batch
// activation matrices for every layer boundary, ping-pong gradient matrices,
// and one flat gradient buffer per shard so parallel workers never share an
// accumulator. All buffers grow monotonically and are reused, so the
// steady-state train loop performs zero heap allocations.
type scratch struct {
	net *Network

	params    []*Param
	paramOffs []int // flat-buffer offset of each param
	layerOffs []int // flat-buffer offset of each layer's first param (-1 if none)
	total     int   // total scalar parameter count

	widths  []int // layer-boundary widths for the current input width
	actBufs []matBuf
	acts    []Mat // acts[l] is the input to layer l; acts[len] the output
	maxW    int

	gLBuf, gABuf, gBBuf matBuf
	gL, gA, gB          Mat // loss-grad and ping-pong backward buffers

	shardGrads [][]float64 // per-shard flat parameter gradients
	shardLoss  []float64
	lossTmp    [][]float64 // per-shard softmax scratch
	tiles      [][]float64 // per-shard SIMD transpose tiles (4 quarters of 4*maxW)

	runner *parallel.Runner

	// fwdOK records whether the activation matrices hold a full
	// BatchForward result for the current row count; InferBatch clears it
	// because its tile-resident pass never materializes them.
	fwdOK bool

	// Per-cycle state: written by the dispatching goroutine before
	// runner.Run, read by shard workers (the channel hand-off orders it).
	mode    int
	rows    int
	nShards int
	loss    Loss
	ys      [][]float64
	gOut    Mat
}

// batchable reports whether every layer is one of the built-in kinds the
// batched kernels know how to drive.
func (n *Network) batchable() bool {
	for _, l := range n.Layers {
		switch l.(type) {
		case *Dense, *LeakyReLU, *ReLU, *Sigmoid, *Tanh:
		default:
			return false
		}
	}
	return true
}

// ensureScratch sizes the arena for a rows×inCols batch, building it on first
// use. It returns nil when the network contains a layer kind the batched
// kernels cannot drive (callers then fall back to the per-sample path). The
// network topology must not change once batched training has started.
//
//lint:allow hotpathalloc first-batch arena construction; every later batch reuses or grows the same scratch
func (n *Network) ensureScratch(rows, inCols int) *scratch {
	sc := n.sc
	if sc == nil {
		if !n.batchable() {
			return nil
		}
		sc = &scratch{net: n}
		sc.layerOffs = make([]int, len(n.Layers))
		off := 0
		for li, l := range n.Layers {
			ps := l.Params()
			if len(ps) == 0 {
				sc.layerOffs[li] = -1
				continue
			}
			sc.layerOffs[li] = off
			for _, p := range ps {
				sc.params = append(sc.params, p)
				sc.paramOffs = append(sc.paramOffs, off)
				off += len(p.W)
			}
		}
		sc.total = off
		sc.widths = make([]int, len(n.Layers)+1)
		sc.actBufs = make([]matBuf, len(n.Layers)+1)
		sc.acts = make([]Mat, len(n.Layers)+1)
		sc.runner = parallel.NewRunner(sc.shardFn)
		n.sc = sc
	}

	// Recompute boundary widths for this input width (cheap integer walk);
	// mismatched Dense inputs are programmer errors, caught here once so the
	// shard kernels can skip per-row checks.
	w := inCols
	sc.widths[0] = w
	sc.maxW = w
	for li, l := range n.Layers {
		if d, ok := l.(*Dense); ok {
			if w != d.In {
				panic(fmt.Sprintf("nn: batch input width %d does not match Dense input %d at layer %d", w, d.In, li)) //lint:allow panicfree shape mismatch is a programmer error caught before training starts
			}
			w = d.Out
		}
		sc.widths[li+1] = w
		if w > sc.maxW {
			sc.maxW = w
		}
	}

	sc.rows = rows
	sc.nShards = (rows + shardRows - 1) / shardRows
	for i := range sc.acts {
		sc.acts[i] = sc.actBufs[i].mat(rows, sc.widths[i])
	}
	outW := sc.widths[len(sc.widths)-1]
	sc.gL = sc.gLBuf.mat(rows, outW)
	sc.gA = sc.gABuf.mat(rows, sc.maxW)
	sc.gB = sc.gBBuf.mat(rows, sc.maxW)
	for len(sc.shardGrads) < sc.nShards {
		sc.shardGrads = append(sc.shardGrads, make([]float64, sc.total))
		sc.shardLoss = append(sc.shardLoss, 0)
		sc.lossTmp = append(sc.lossTmp, make([]float64, sc.maxW))
		sc.tiles = append(sc.tiles, nil)
	}
	for s := 0; s < sc.nShards; s++ {
		if len(sc.lossTmp[s]) < sc.maxW {
			sc.lossTmp[s] = make([]float64, sc.maxW)
		}
		if len(sc.tiles[s]) < 16*sc.maxW {
			sc.tiles[s] = make([]float64, 16*sc.maxW)
		}
	}
	return sc
}

// shardFn is the persistent worker body: it processes shard s's row range
// according to the current cycle mode. Shards touch disjoint rows and write
// only their own gradient buffer, so they are race-free by construction.
func (sc *scratch) shardFn(s int) {
	r0 := s * shardRows
	r1 := r0 + shardRows
	if r1 > sc.rows {
		r1 = sc.rows
	}
	tile := sc.tiles[s]
	switch sc.mode {
	case modeForward:
		sc.forwardRange(r0, r1, tile)
	case modeTrain:
		sc.forwardRange(r0, r1, tile)
		buf := sc.shardGrads[s]
		for i := range buf {
			buf[i] = 0
		}
		tmp := sc.lossTmp[s]
		out := sc.acts[len(sc.acts)-1]
		var sum float64
		for r := r0; r < r1; r++ {
			sum += lossGradInto(sc.loss, sc.gL.Row(r), tmp, out.Row(r), sc.ys[r])
		}
		sc.shardLoss[s] = sum
		sc.backwardRange(sc.gL, r0, r1, buf, tile)
	case modeBackwardAcc:
		buf := sc.shardGrads[s]
		for i := range buf {
			buf[i] = 0
		}
		sc.backwardRange(sc.gOut, r0, r1, buf, tile)
	case modeBackwardData:
		sc.backwardRange(sc.gOut, r0, r1, nil, tile)
	}
}

// forwardRange runs rows [r0, r1) through every layer, filling the activation
// matrices. Per-sample accumulation order inside each kernel matches the
// scalar Forward path exactly, so outputs are byte-identical to it.
func (sc *scratch) forwardRange(r0, r1 int, tile []float64) {
	for li, l := range sc.net.Layers {
		in, out := sc.acts[li], sc.acts[li+1]
		switch t := l.(type) {
		case *Dense:
			batchDenseForward(t, in, out, r0, r1, tile)
		case *LeakyReLU:
			for r := r0; r < r1; r++ {
				x, y := in.Row(r), out.Row(r)
				i := 0
				if simdEnabled && len(x) >= 4 {
					n4 := len(x) &^ 3
					leakyForwardASM(&x[0], &y[0], n4, t.Alpha)
					i = n4
				}
				for ; i < len(x); i++ {
					if v := x[i]; v >= 0 {
						y[i] = v
					} else {
						y[i] = t.Alpha * v
					}
				}
			}
		case *ReLU:
			for r := r0; r < r1; r++ {
				x, y := in.Row(r), out.Row(r)
				i := 0
				if simdEnabled && len(x) >= 4 {
					n4 := len(x) &^ 3
					reluForwardASM(&x[0], &y[0], n4)
					i = n4
				}
				for ; i < len(x); i++ {
					if v := x[i]; v > 0 {
						y[i] = v
					} else {
						y[i] = 0
					}
				}
			}
		case *Sigmoid:
			for r := r0; r < r1; r++ {
				x, y := in.Row(r), out.Row(r)
				for i, v := range x {
					y[i] = 1 / (1 + math.Exp(-v))
				}
			}
		case *Tanh:
			for r := r0; r < r1; r++ {
				x, y := in.Row(r), out.Row(r)
				for i, v := range x {
					y[i] = math.Tanh(v)
				}
			}
		}
	}
}

// backwardRange propagates the gradient rows [r0, r1) of src back through the
// stack, writing layer-input gradients into the ping-pong buffers and, when
// buf is non-nil, accumulating parameter gradients into it. It returns the
// dLoss/dInput matrix (a view over one of the ping-pong buffers).
func (sc *scratch) backwardRange(src Mat, r0, r1 int, buf, tile []float64) Mat {
	cur := src
	for k, li := 0, len(sc.net.Layers)-1; li >= 0; k, li = k+1, li-1 {
		w := sc.widths[li]
		var dst Mat
		if k%2 == 0 {
			dst = sc.gA.View(sc.rows, w)
		} else {
			dst = sc.gB.View(sc.rows, w)
		}
		switch t := sc.net.Layers[li].(type) {
		case *Dense:
			var gw, gb []float64
			if buf != nil {
				off := sc.layerOffs[li]
				gw = buf[off : off+t.In*t.Out]
				gb = buf[off+t.In*t.Out : off+t.In*t.Out+t.Out]
			}
			batchDenseBackward(t, sc.acts[li], cur, dst, gw, gb, r0, r1, tile)
		case *LeakyReLU:
			in := sc.acts[li]
			for r := r0; r < r1; r++ {
				x, g, gx := in.Row(r), cur.Row(r), dst.Row(r)
				i := 0
				if simdEnabled && len(g) >= 4 {
					n4 := len(g) &^ 3
					leakyBackwardASM(&x[0], &g[0], &gx[0], n4, t.Alpha)
					i = n4
				}
				for ; i < len(g); i++ {
					if x[i] >= 0 {
						gx[i] = g[i]
					} else {
						gx[i] = t.Alpha * g[i]
					}
				}
			}
		case *ReLU:
			in := sc.acts[li]
			for r := r0; r < r1; r++ {
				x, g, gx := in.Row(r), cur.Row(r), dst.Row(r)
				i := 0
				if simdEnabled && len(g) >= 4 {
					n4 := len(g) &^ 3
					reluBackwardASM(&x[0], &g[0], &gx[0], n4)
					i = n4
				}
				for ; i < len(g); i++ {
					if x[i] > 0 {
						gx[i] = g[i]
					} else {
						gx[i] = 0
					}
				}
			}
		case *Sigmoid:
			out := sc.acts[li+1]
			for r := r0; r < r1; r++ {
				y, g, gx := out.Row(r), cur.Row(r), dst.Row(r)
				for i, gi := range g {
					s := y[i]
					gx[i] = gi * s * (1 - s)
				}
			}
		case *Tanh:
			out := sc.acts[li+1]
			for r := r0; r < r1; r++ {
				y, g, gx := out.Row(r), cur.Row(r), dst.Row(r)
				for i, gi := range g {
					t := y[i]
					gx[i] = gi * (1 - t*t)
				}
			}
		}
		cur = dst
	}
	return cur
}

// dxMat returns the buffer holding dLoss/dInput after a full backward pass
// (determined by the parity of the layer count).
func (sc *scratch) dxMat() Mat {
	if (len(sc.net.Layers)-1)%2 == 0 {
		return sc.gA.View(sc.rows, sc.widths[0])
	}
	return sc.gB.View(sc.rows, sc.widths[0])
}

// reduceInto folds the per-shard gradient buffers into the parameter
// accumulators in ascending shard order — the fixed-order reduction that
// keeps training byte-identical at any worker count.
func (sc *scratch) reduceInto() {
	for s := 0; s < sc.nShards; s++ {
		buf := sc.shardGrads[s]
		for pi, p := range sc.params {
			off := sc.paramOffs[pi]
			g := p.G
			src := buf[off : off+len(g)]
			for i := range g {
				g[i] += src[i]
			}
		}
	}
}

// reduceScaled folds the per-shard gradients directly into p.G scaled by inv,
// in one fused pass (ascending shard order per element, scale last — the same
// value sequence as reduceInto followed by a scale pass, without the extra
// zero/read/write traffic). Used by the train step, which owns p.G outright.
func (sc *scratch) reduceScaled(inv float64) {
	for pi, p := range sc.params {
		off := sc.paramOffs[pi]
		g := p.G
		end := off + len(g)
		s0 := sc.shardGrads[0][off:end]
		switch sc.nShards {
		case 1:
			for i := range g {
				g[i] = s0[i] * inv
			}
		case 2:
			s1 := sc.shardGrads[1][off:end]
			for i := range g {
				t := s0[i]
				t += s1[i]
				g[i] = t * inv
			}
		case 4:
			s1 := sc.shardGrads[1][off:end]
			s2 := sc.shardGrads[2][off:end]
			s3 := sc.shardGrads[3][off:end]
			for i := range g {
				t := s0[i]
				t += s1[i]
				t += s2[i]
				t += s3[i]
				g[i] = t * inv
			}
		default:
			copy(g, s0)
			for s := 1; s < sc.nShards; s++ {
				src := sc.shardGrads[s][off:end]
				for i := range g {
					g[i] += src[i]
				}
			}
			for i := range g {
				g[i] *= inv
			}
		}
	}
}

// BatchForward runs a whole batch through the network, returning an
// x.Rows×OutSize matrix view into the scratch arena (valid until the next
// batch operation on this network). Outputs are byte-identical to calling
// Forward row by row. Networks containing layer kinds outside this package
// fall back to exactly that, into a freshly allocated matrix.
func (n *Network) BatchForward(x Mat) Mat {
	if x.Rows == 0 {
		return Mat{}
	}
	sc := n.ensureScratch(x.Rows, x.Cols)
	if sc == nil {
		var out Mat
		for r := 0; r < x.Rows; r++ {
			y := n.Forward(x.Row(r))
			if r == 0 {
				out = NewMat(x.Rows, len(y))
			}
			copy(out.Row(r), y)
		}
		return out
	}
	for r := 0; r < x.Rows; r++ {
		copy(sc.acts[0].Row(r), x.Row(r))
	}
	sc.mode = modeForward
	sc.runner.Run(sc.nShards)
	sc.fwdOK = true
	return sc.acts[len(sc.acts)-1]
}

// InferBatch is the forward-only inference fast path: full 4-row blocks stay
// in the SIMD lane tile across the entire layer stack — the tile an output
// kernel writes (o-major) is laid out exactly as the next kernel's input
// (k-major), and the activation layers are elementwise, so the per-layer
// gather/scatter that BatchForward pays disappears and only the final scalar
// output leaves the tile. Each sample's arithmetic runs in the same order as
// the scalar Forward, so out is byte-identical to it. It writes each row's
// single output into out[r] and reports false — leaving out untouched — when
// this network or platform cannot run it (head wider than one output, SIMD
// unavailable, non-batchable or narrow layers); callers then fall back to
// BatchForward. Unlike BatchForward it does not fill the activation
// matrices, so it cannot seed a BatchBackward.
func (n *Network) InferBatch(x Mat, out []float64) bool {
	if !simdEnabled || x.Rows == 0 || len(out) < x.Rows {
		return false
	}
	sc := n.ensureScratch(x.Rows, x.Cols)
	if sc == nil || sc.widths[len(sc.widths)-1] != 1 {
		return false
	}
	for _, l := range n.Layers {
		if d, ok := l.(*Dense); ok && d.In < 4 {
			return false
		}
	}
	sc.fwdOK = false
	tile := sc.tiles[0]
	q := len(tile) / 4
	xt, yt := tile[:q], tile[q:2*q]
	r := 0
	for ; r+4 <= x.Rows; r += 4 {
		x0, x1, x2, x3 := x.Row(r), x.Row(r+1), x.Row(r+2), x.Row(r+3)
		for k := 0; k < x.Cols; k++ {
			xt[k*4] = x0[k]
			xt[k*4+1] = x1[k]
			xt[k*4+2] = x2[k]
			xt[k*4+3] = x3[k]
		}
		cur, nxt := xt, yt
		w := x.Cols
		for _, l := range n.Layers {
			switch t := l.(type) {
			case *Dense:
				denseForwardBlockASM(&t.Weight.W[0], &t.Bias.W[0], &cur[0], &nxt[0], t.In, t.Out)
				cur, nxt = nxt, cur
				w = t.Out
			case *LeakyReLU:
				leakyForwardASM(&cur[0], &cur[0], 4*w, t.Alpha)
			case *ReLU:
				reluForwardASM(&cur[0], &cur[0], 4*w)
			case *Sigmoid:
				for i := 0; i < 4*w; i++ {
					cur[i] = 1 / (1 + math.Exp(-cur[i]))
				}
			case *Tanh:
				for i := 0; i < 4*w; i++ {
					cur[i] = math.Tanh(cur[i])
				}
			}
		}
		out[r], out[r+1], out[r+2], out[r+3] = cur[0], cur[1], cur[2], cur[3]
	}
	for ; r < x.Rows; r++ {
		out[r] = n.Forward(x.Row(r))[0]
	}
	return true
}

// BatchBackward propagates a full batch of output gradients back through the
// network, accumulating parameter gradients (deterministic fixed-order shard
// reduction) and returning dLoss/dInput as a scratch view. BatchForward must
// have been called immediately before with the same row count.
func (n *Network) BatchBackward(gradOut Mat) Mat {
	return n.batchBackward(gradOut, modeBackwardAcc)
}

// BatchBackwardData is BatchBackward without parameter-gradient accumulation:
// it only computes dLoss/dInput. The GAN generator step uses it to chain
// gradients through the frozen discriminator and encoder.
func (n *Network) BatchBackwardData(gradOut Mat) Mat {
	return n.batchBackward(gradOut, modeBackwardData)
}

func (n *Network) batchBackward(gradOut Mat, mode int) Mat {
	sc := n.sc
	if sc == nil || !sc.fwdOK || sc.rows != gradOut.Rows || gradOut.Cols != sc.widths[len(sc.widths)-1] {
		panic("nn: BatchBackward requires a matching BatchForward on a batchable network") //lint:allow panicfree out-of-order batch API use is a programmer error
	}
	sc.gOut = gradOut
	sc.mode = mode
	sc.runner.Run(sc.nShards)
	sc.gOut = Mat{}
	if mode == modeBackwardAcc {
		sc.reduceInto()
	}
	return sc.dxMat()
}

// trainBatchBatched is the sharded minibatch step behind TrainBatch: copy the
// batch into the arena, run fused forward/loss/backward per shard, reduce
// shard gradients in fixed order, average, and step the optimizer. Steady
// state allocates nothing.
func (n *Network) trainBatchBatched(sc *scratch, xs, ys [][]float64, loss Loss, opt Optimizer) float64 {
	for i := range xs {
		copy(sc.acts[0].Row(i), xs[i])
	}
	sc.mode = modeTrain
	sc.loss = loss
	sc.ys = ys
	sc.runner.Run(sc.nShards)
	sc.fwdOK = true
	sc.ys = nil
	var total float64
	for s := 0; s < sc.nShards; s++ {
		total += sc.shardLoss[s]
	}
	sc.reduceScaled(1 / float64(len(xs)))
	opt.Step(sc.params)
	return total / float64(len(xs))
}

// batchDenseForward computes y = W·x + b for rows [r0, r1), four samples at a
// time so the weight row stays hot and the four independent accumulators hide
// FMA latency. Each sample's dot product runs in ascending k order — the same
// order as the scalar Forward — so results are byte-identical to it. On AVX2
// hardware full 4-row blocks go through the assembly kernel (one sample per
// vector lane, same per-lane accumulation order, still byte-identical).
func batchDenseForward(d *Dense, in, out Mat, r0, r1 int, tile []float64) {
	if simdEnabled && d.In >= 4 && d.Out > 0 && r1-r0 >= 4 {
		batchDenseForwardSIMD(d, in, out, r0, r1, tile)
		return
	}
	for o := 0; o < d.Out; o++ {
		row := d.Weight.W[o*d.In : (o+1)*d.In]
		b := d.Bias.W[o]
		r := r0
		for ; r+4 <= r1; r += 4 {
			x0, x1, x2, x3 := in.Row(r), in.Row(r+1), in.Row(r+2), in.Row(r+3)
			s0, s1, s2, s3 := b, b, b, b
			for k, w := range row {
				s0 += w * x0[k]
				s1 += w * x1[k]
				s2 += w * x2[k]
				s3 += w * x3[k]
			}
			out.Row(r)[o] = s0
			out.Row(r + 1)[o] = s1
			out.Row(r + 2)[o] = s2
			out.Row(r + 3)[o] = s3
		}
		for ; r < r1; r++ {
			x := in.Row(r)
			s := b
			for k, w := range row {
				s += w * x[k]
			}
			out.Row(r)[o] = s
		}
	}
}

// batchDenseBackward computes dX for rows [r0, r1) and, when gw/gb are
// non-nil, accumulates dW/db into them. dX keeps each sample's accumulation
// independent and in the scalar Backward's order (byte-identical to it); dW
// within a shard also accumulates in per-sample order, so a single-shard
// batch is bit-equal to the sequential reference. Across shards the reduction
// reassociates (fixed shard order — deterministic at any worker count). On
// AVX2 hardware full 4-row blocks go through the assembly kernels, which keep
// the same per-element accumulation orders.
func batchDenseBackward(d *Dense, in, gout, gin Mat, gw, gb []float64, r0, r1 int, tile []float64) {
	if simdEnabled && d.In >= 4 && d.Out > 0 && r1-r0 >= 4 {
		batchDenseBackwardSIMD(d, in, gout, gin, gw, gb, r0, r1, tile)
		return
	}
	for r := r0; r < r1; r++ {
		gx := gin.Row(r)
		for i := range gx {
			gx[i] = 0
		}
	}
	if gw == nil {
		for r := r0; r < r1; r++ {
			g, gx := gout.Row(r), gin.Row(r)
			for o := 0; o < d.Out; o++ {
				gv := g[o]
				if gv == 0 {
					continue
				}
				row := d.Weight.W[o*d.In : (o+1)*d.In]
				for k, w := range row {
					gx[k] += gv * w
				}
			}
		}
		return
	}
	r := r0
	for ; r+4 <= r1; r += 4 {
		g0, g1, g2, g3 := gout.Row(r), gout.Row(r+1), gout.Row(r+2), gout.Row(r+3)
		x0, x1, x2, x3 := in.Row(r), in.Row(r+1), in.Row(r+2), in.Row(r+3)
		gx0, gx1, gx2, gx3 := gin.Row(r), gin.Row(r+1), gin.Row(r+2), gin.Row(r+3)
		for o := 0; o < d.Out; o++ {
			v0, v1, v2, v3 := g0[o], g1[o], g2[o], g3[o]
			if v0 == 0 && v1 == 0 && v2 == 0 && v3 == 0 {
				continue
			}
			// Accumulate in per-sample order (four separate rounded adds,
			// not one block sum) so shard gradients stay bit-identical to
			// the sequential reference accumulation.
			tb := gb[o]
			tb += v0
			tb += v1
			tb += v2
			tb += v3
			gb[o] = tb
			row := d.Weight.W[o*d.In : (o+1)*d.In]
			grow := gw[o*d.In : (o+1)*d.In]
			for k, w := range row {
				tg := grow[k]
				tg += v0 * x0[k]
				tg += v1 * x1[k]
				tg += v2 * x2[k]
				tg += v3 * x3[k]
				grow[k] = tg
				gx0[k] += v0 * w
				gx1[k] += v1 * w
				gx2[k] += v2 * w
				gx3[k] += v3 * w
			}
		}
	}
	for ; r < r1; r++ {
		g, x, gx := gout.Row(r), in.Row(r), gin.Row(r)
		for o := 0; o < d.Out; o++ {
			gv := g[o]
			if gv == 0 {
				continue
			}
			gb[o] += gv
			row := d.Weight.W[o*d.In : (o+1)*d.In]
			grow := gw[o*d.In : (o+1)*d.In]
			for k, w := range row {
				grow[k] += gv * x[k]
				gx[k] += gv * w
			}
		}
	}
}

// batchDenseForwardSIMD drives the AVX2 forward kernel over full 4-row
// blocks: gather the block into a k-major tile (one sample per lane), run the
// kernel, scatter the o-major result tile back into the activation rows. The
// per-lane accumulation order equals the scalar kernel's, so outputs are
// byte-identical. Remaining 1-3 rows use the scalar loop.
func batchDenseForwardSIMD(d *Dense, in, out Mat, r0, r1 int, tile []float64) {
	q := len(tile) / 4
	xt, yt := tile[:q], tile[q:2*q]
	r := r0
	for ; r+4 <= r1; r += 4 {
		x0, x1, x2, x3 := in.Row(r), in.Row(r+1), in.Row(r+2), in.Row(r+3)
		for k := 0; k < d.In; k++ {
			xt[k*4] = x0[k]
			xt[k*4+1] = x1[k]
			xt[k*4+2] = x2[k]
			xt[k*4+3] = x3[k]
		}
		denseForwardBlockASM(&d.Weight.W[0], &d.Bias.W[0], &xt[0], &yt[0], d.In, d.Out)
		y0, y1, y2, y3 := out.Row(r), out.Row(r+1), out.Row(r+2), out.Row(r+3)
		for o := 0; o < d.Out; o++ {
			y0[o] = yt[o*4]
			y1[o] = yt[o*4+1]
			y2[o] = yt[o*4+2]
			y3[o] = yt[o*4+3]
		}
	}
	for ; r < r1; r++ {
		x, y := in.Row(r), out.Row(r)
		for o := 0; o < d.Out; o++ {
			row := d.Weight.W[o*d.In : (o+1)*d.In]
			s := d.Bias.W[o]
			for k, w := range row {
				s += w * x[k]
			}
			y[o] = s
		}
	}
}

// batchDenseBackwardSIMD drives the AVX2 backward kernels over full 4-row
// blocks. dX: gradients gathered into an o-major tile, accumulated per lane
// in ascending o order, scattered back. dW: the k-vectorized kernel adds the
// four samples sequentially per weight; the bias and the k tail (in % 4) stay
// in Go with the same quad-zero skip and per-sample order as the scalar
// kernel. Remaining 1-3 rows use the scalar loop.
func batchDenseBackwardSIMD(d *Dense, in, gout, gin Mat, gw, gb []float64, r0, r1 int, tile []float64) {
	q := len(tile) / 4
	gvt, gxt := tile[2*q:3*q], tile[3*q:4*q]
	in4 := d.In &^ 3
	r := r0
	for ; r+4 <= r1; r += 4 {
		g0, g1, g2, g3 := gout.Row(r), gout.Row(r+1), gout.Row(r+2), gout.Row(r+3)
		for o := 0; o < d.Out; o++ {
			gvt[o*4] = g0[o]
			gvt[o*4+1] = g1[o]
			gvt[o*4+2] = g2[o]
			gvt[o*4+3] = g3[o]
		}
		for i := 0; i < 4*d.In; i++ {
			gxt[i] = 0
		}
		denseBackwardDXBlockASM(&d.Weight.W[0], &gvt[0], &gxt[0], d.In, d.Out)
		gx0, gx1, gx2, gx3 := gin.Row(r), gin.Row(r+1), gin.Row(r+2), gin.Row(r+3)
		for k := 0; k < d.In; k++ {
			gx0[k] = gxt[k*4]
			gx1[k] = gxt[k*4+1]
			gx2[k] = gxt[k*4+2]
			gx3[k] = gxt[k*4+3]
		}
		if gw == nil {
			continue
		}
		x0, x1, x2, x3 := in.Row(r), in.Row(r+1), in.Row(r+2), in.Row(r+3)
		denseBackwardDWBlockASM(&gw[0], &gvt[0], &x0[0], &x1[0], &x2[0], &x3[0], d.In, in4, d.Out)
		for o := 0; o < d.Out; o++ {
			v0, v1, v2, v3 := g0[o], g1[o], g2[o], g3[o]
			if v0 == 0 && v1 == 0 && v2 == 0 && v3 == 0 {
				continue
			}
			tb := gb[o]
			tb += v0
			tb += v1
			tb += v2
			tb += v3
			gb[o] = tb
			grow := gw[o*d.In : (o+1)*d.In]
			for k := in4; k < d.In; k++ {
				tg := grow[k]
				tg += v0 * x0[k]
				tg += v1 * x1[k]
				tg += v2 * x2[k]
				tg += v3 * x3[k]
				grow[k] = tg
			}
		}
	}
	for ; r < r1; r++ {
		g, x, gx := gout.Row(r), in.Row(r), gin.Row(r)
		for i := range gx {
			gx[i] = 0
		}
		for o := 0; o < d.Out; o++ {
			gv := g[o]
			if gv == 0 {
				continue
			}
			row := d.Weight.W[o*d.In : (o+1)*d.In]
			if gw != nil {
				gb[o] += gv
				grow := gw[o*d.In : (o+1)*d.In]
				for k, w := range row {
					grow[k] += gv * x[k]
					gx[k] += gv * w
				}
			} else {
				for k, w := range row {
					gx[k] += gv * w
				}
			}
		}
	}
}
