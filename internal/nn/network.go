package nn

import (
	"fmt"
	"math/rand"
)

// Network is an ordered stack of layers trained with backprop.
//
// The layer stack must not be modified once training or batched inference has
// started: the batched compute path caches the parameter list and a scratch
// arena keyed to the topology.
type Network struct {
	Layers []Layer

	sc     *scratch // batched-compute arena, built lazily on first batch op
	pcache []*Param // cached Params() result for allocation-free hot paths
}

// NewNetwork builds a network from the given layers.
func NewNetwork(layers ...Layer) *Network { return &Network{Layers: layers} }

// MLP constructs the paper's standard module shape: `depth` hidden
// fully-connected layers of width `hidden` with LeakyReLU activations,
// followed by a linear output layer of width `out`. Table 3 uses
// depth=3, hidden=128 for 𝔼 and 𝔾.
func MLP(in, hidden, depth, out int, rng *rand.Rand) *Network {
	var layers []Layer
	prev := in
	for i := 0; i < depth; i++ {
		layers = append(layers, NewDense(prev, hidden, rng), NewLeakyReLU())
		prev = hidden
	}
	layers = append(layers, NewDense(prev, out, rng))
	return NewNetwork(layers...)
}

// Forward runs x through all layers and returns the output.
func (n *Network) Forward(x []float64) []float64 {
	for _, l := range n.Layers {
		x = l.Forward(x)
	}
	return x
}

// Backward propagates dLoss/dOutput through the stack (in reverse), returning
// dLoss/dInput and accumulating parameter gradients. Forward must have been
// called immediately before with the corresponding input.
func (n *Network) Backward(grad []float64) []float64 {
	for i := len(n.Layers) - 1; i >= 0; i-- {
		grad = n.Layers[i].Backward(grad)
	}
	return grad
}

// Params returns every trainable tensor in the network.
func (n *Network) Params() []*Param {
	var ps []*Param
	for _, l := range n.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// params returns the cached flat parameter list, building it on first use.
// Hot paths use it so steady-state training performs no allocations.
func (n *Network) params() []*Param {
	if n.pcache == nil {
		n.pcache = n.Params()
	}
	return n.pcache
}

// ZeroGrad clears all accumulated gradients.
func (n *Network) ZeroGrad() {
	for _, p := range n.params() {
		p.ZeroGrad()
	}
}

// Clone returns a deep copy with independent parameters (gradients zeroed).
func (n *Network) Clone() *Network {
	out := &Network{Layers: make([]Layer, len(n.Layers))}
	for i, l := range n.Layers {
		out.Layers[i] = l.Clone()
	}
	return out
}

// CloneInto copies this network's parameters into dst, reusing dst's
// memory: no layer, parameter, or scratch allocation happens on success.
// It succeeds only when dst has the identical topology (same layer kinds
// and dimensions); otherwise it reports false and leaves dst untouched.
// On success dst is parameter-identical to n with gradients zeroed, and
// keeps its own forward/backward scratch buffers — the property serving
// replicas rely on when refreshing from a swapped-in model.
func (n *Network) CloneInto(dst *Network) bool {
	if dst == nil || dst == n || len(dst.Layers) != len(n.Layers) {
		return false
	}
	for i, l := range n.Layers {
		if !sameLayerShape(l, dst.Layers[i]) {
			return false
		}
	}
	for i, l := range n.Layers {
		dps := dst.Layers[i].Params()
		for j, sp := range l.Params() {
			copy(dps[j].W, sp.W)
			dps[j].ZeroGrad()
		}
	}
	return true
}

// sameLayerShape reports whether two layers have the same kind and
// dimensions, which makes their parameter tensors copy-compatible.
func sameLayerShape(a, b Layer) bool {
	switch al := a.(type) {
	case *Dense:
		bl, ok := b.(*Dense)
		return ok && al.In == bl.In && al.Out == bl.Out
	case *LeakyReLU:
		bl, ok := b.(*LeakyReLU)
		return ok && al.Alpha == bl.Alpha
	case *ReLU:
		_, ok := b.(*ReLU)
		return ok
	case *Sigmoid:
		_, ok := b.(*Sigmoid)
		return ok
	case *Tanh:
		_, ok := b.(*Tanh)
		return ok
	default:
		return false
	}
}

// NumParams returns the total number of scalar parameters.
func (n *Network) NumParams() int {
	total := 0
	for _, p := range n.Params() {
		total += len(p.W)
	}
	return total
}

// InSize returns the input width of the first Dense layer, or -1 if none.
func (n *Network) InSize() int {
	for _, l := range n.Layers {
		if d, ok := l.(*Dense); ok {
			return d.In
		}
	}
	return -1
}

// OutSize returns the output width of the last Dense layer, or -1 if none.
func (n *Network) OutSize() int {
	for i := len(n.Layers) - 1; i >= 0; i-- {
		if d, ok := n.Layers[i].(*Dense); ok {
			return d.Out
		}
	}
	return -1
}

// TrainBatch performs one optimizer step on a minibatch and returns the mean
// loss over the batch. The work is sharded across the parallel worker pool
// with a fixed-order gradient reduction, so seeded training is byte-identical
// at any worker count. Malformed batches (length or width mismatches) return
// an error instead of panicking.
func (n *Network) TrainBatch(xs, ys [][]float64, loss Loss, opt Optimizer) (float64, error) {
	if len(xs) != len(ys) {
		return 0, fmt.Errorf("nn: TrainBatch len mismatch %d vs %d", len(xs), len(ys))
	}
	if len(xs) == 0 {
		return 0, nil
	}
	inW := len(xs[0])
	for i := range xs {
		if len(xs[i]) != inW {
			return 0, fmt.Errorf("nn: TrainBatch ragged input: row %d has width %d, row 0 has %d", i, len(xs[i]), inW)
		}
	}
	if want := n.InSize(); want >= 0 && inW != want {
		return 0, fmt.Errorf("nn: TrainBatch input width %d, network expects %d", inW, want)
	}
	sc := n.ensureScratch(len(xs), inW)
	if sc == nil {
		// Layer kinds outside this package: per-sample fallback.
		return n.trainBatchSerial(xs, ys, loss, opt), nil
	}
	outW := sc.widths[len(sc.widths)-1]
	for i := range ys {
		if len(ys[i]) != outW {
			return 0, fmt.Errorf("nn: TrainBatch target row %d has width %d, network outputs %d", i, len(ys[i]), outW)
		}
	}
	return n.trainBatchBatched(sc, xs, ys, loss, opt), nil
}

// trainBatchSerial is the per-sample minibatch step used when the network
// contains layer kinds the batched kernels cannot drive.
func (n *Network) trainBatchSerial(xs, ys [][]float64, loss Loss, opt Optimizer) float64 {
	n.ZeroGrad()
	var total float64
	for i := range xs {
		pred := n.Forward(xs[i])
		total += loss.Loss(pred, ys[i])
		n.Backward(loss.Grad(pred, ys[i]))
	}
	scaleGrads(n.params(), 1/float64(len(xs)))
	opt.Step(n.params())
	return total / float64(len(xs))
}

// Fit trains for `epochs` passes over the data with the given batch size,
// shuffling each epoch with rng. It returns the mean loss of the final epoch.
func (n *Network) Fit(xs, ys [][]float64, loss Loss, opt Optimizer, epochs, batch int, rng *rand.Rand) (float64, error) {
	if len(xs) != len(ys) {
		return 0, fmt.Errorf("nn: Fit len mismatch %d vs %d", len(xs), len(ys))
	}
	if len(xs) == 0 {
		return 0, nil
	}
	if batch <= 0 {
		batch = 32
	}
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	var last float64
	bx := make([][]float64, 0, batch)
	by := make([][]float64, 0, batch)
	for e := 0; e < epochs; e++ {
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		var epochLoss float64
		var batches int
		for start := 0; start < len(idx); start += batch {
			end := start + batch
			if end > len(idx) {
				end = len(idx)
			}
			bx, by = bx[:0], by[:0]
			for _, j := range idx[start:end] {
				bx = append(bx, xs[j])
				by = append(by, ys[j])
			}
			l, err := n.TrainBatch(bx, by, loss, opt)
			if err != nil {
				return 0, err
			}
			epochLoss += l
			batches++
		}
		opt.EndEpoch()
		last = epochLoss / float64(batches)
	}
	return last, nil
}

func scaleGrads(ps []*Param, s float64) {
	for _, p := range ps {
		for i := range p.G {
			p.G[i] *= s
		}
	}
}
