package nn

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := NewNetwork(
		NewDense(4, 8, rng), NewLeakyReLU(),
		NewDense(8, 6, rng), NewTanh(),
		NewDense(6, 2, rng), NewSigmoid(),
	)
	var buf bytes.Buffer
	if err := n.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{0.1, -0.5, 2, 0.7}
	a := n.Forward(x)
	b := loaded.Forward(x)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("outputs diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
	if loaded.NumParams() != n.NumParams() {
		t.Errorf("param counts: %d vs %d", loaded.NumParams(), n.NumParams())
	}
}

func TestLoadRejectsCorruptInput(t *testing.T) {
	cases := []string{
		`not json`,
		`{"layers":[{"kind":"flux"}]}`,
		`{"layers":[{"kind":"dense","in":2,"out":2,"weight":[1],"bias":[0,0]}]}`,
		`{"layers":[{"kind":"dense","in":0,"out":2}]}`,
	}
	for _, c := range cases {
		if _, err := Load(strings.NewReader(c)); err == nil {
			t.Errorf("Load accepted corrupt input %q", c)
		}
	}
}

func TestLoadedNetworkIsTrainable(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := MLP(1, 4, 1, 1, rng)
	var buf bytes.Buffer
	if err := n.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	xs := [][]float64{{0}, {1}}
	ys := [][]float64{{0}, {2}}
	var loss float64
	opt := NewAdam(0.05)
	for i := 0; i < 300; i++ {
		loss, err = loaded.TrainBatch(xs, ys, MSE{}, opt)
		if err != nil {
			t.Fatalf("TrainBatch: %v", err)
		}
	}
	if loss > 1e-3 {
		t.Errorf("loaded network failed to train: loss %v", loss)
	}
}

func TestReLULeakyDefaultAlphaOnLoad(t *testing.T) {
	in := `{"layers":[{"kind":"leakyrelu"}]}`
	n, err := Load(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	l := n.Layers[0].(*LeakyReLU)
	if l.Alpha != 0.01 {
		t.Errorf("alpha = %v, want default 0.01", l.Alpha)
	}
}
