package experiments

import (
	"fmt"
	"math/rand"

	"warper/internal/annotator"
	"warper/internal/ce"
	"warper/internal/dataset"
	"warper/internal/engine"
	"warper/internal/query"
	"warper/internal/tpch"
	"warper/internal/warper"
	"warper/internal/workload"
)

// e2eEnv is the §4.2 environment: the TPC-H-shaped tables, the mini engine,
// and per-table CE machinery for the Figure 1 L⋈O query template.
type e2eEnv struct {
	db         *tpch.DB
	eng        *engine.Engine
	schL, schO *query.Schema
	annL, annO *annotator.Annotator
	rng        *rand.Rand
}

func newE2E(seed int64) *e2eEnv {
	rng := rand.New(rand.NewSource(seed))
	db := tpch.Generate(tpch.Config{Orders: 3000}, rng)
	return &e2eEnv{
		db:   db,
		eng:  engine.New(db),
		schL: query.SchemaOf(db.Lineitem),
		schO: query.SchemaOf(db.Orders),
		annL: annotator.New(db.Lineitem),
		annO: annotator.New(db.Orders),
		rng:  rng,
	}
}

// e2eOpts constrains predicates to the non-key value columns so they behave
// like the paper's template predicates.
var e2eOpts = workload.Options{MinConstrained: 1, MaxConstrained: 2}

func (e *e2eEnv) gen(spec string, tbl *dataset.Table, sch *query.Schema) workload.Generator {
	return workload.Parse(spec, tbl, sch, e2eOpts)
}

// labeledPairs draws n (predL, predO) pairs from the given per-table specs
// with fresh ground truth.
func (e *e2eEnv) labeledPairs(specL, specO string, n int) (ls, os []query.Labeled) {
	gl := e.gen(specL, e.db.Lineitem, e.schL)
	gob := e.gen(specO, e.db.Orders, e.schO)
	for i := 0; i < n; i++ {
		pl := gl.Gen(e.rng)
		po := gob.Gen(e.rng)
		ls = append(ls, query.Labeled{Pred: pl, Card: mustCount(e.annL, pl)})
		os = append(os, query.Labeled{Pred: po, Card: mustCount(e.annO, po)})
	}
	return ls, os
}

// Table9 regenerates Table 9: the maximum latency gap between plans chosen
// with accurate vs inaccurate cardinality estimates, per scenario S1–S3.
func Table9(sc Scale, seed int64) []*Table {
	e := newE2E(seed)
	t := &Table{
		ID:     "Table 9",
		Title:  "Max latency gap between accurate-CE and inaccurate-CE plans (100 queries each)",
		Header: []string{"Scenario", "Executed as", "Predicate on", "Latency gap"},
	}
	const nQueries = 100
	ls, osQ := e.labeledPairs("w1", "w1", nQueries)
	scen := []struct {
		s       engine.Scenario
		execAs  string
		predOn  string
		mangle  func(trueL, trueO float64) (float64, float64)
		fullOnO bool
	}{
		// S1: under-estimate the build side (the predicated L input) so the
		// spill goes unplanned.
		{engine.S1BufferSpill, "single thread", "L", func(l, o float64) (float64, float64) { return l / 100, o }, true},
		// S2: under-estimate both sides so the planner picks a nested loop.
		{engine.S2JoinType, "single thread", "L, O", func(l, o float64) (float64, float64) { return l / 1000, o / 1000 }, false},
		// S3: invert the relative sizes so the bitmap lands on the wrong side.
		{engine.S3BitmapSide, "multi thread", "L, O", func(l, o float64) (float64, float64) { return o, l }, false},
	}
	for _, s := range scen {
		worst := 1.0
		for i := 0; i < nQueries; i++ {
			predL := ls[i].Pred
			predO := osQ[i].Pred
			if s.fullOnO {
				predO = query.NewFullRange(e.schO)
			}
			trueL, trueO := ls[i].Card, osQ[i].Card
			if s.fullOnO {
				trueO = float64(e.db.Orders.NumRows())
			}
			estL, estO := s.mangle(trueL, trueO)
			good, bad := e.eng.LatencyGap(s.s, predL, predO, estL, estO, trueL, trueO)
			if good > 0 {
				if r := float64(bad) / float64(good); r > worst {
					worst = r
				}
			}
		}
		t.Rows = append(t.Rows, []string{s.s.String(), s.execAs, s.predOn, fmt.Sprintf("%.1fx", worst)})
	}
	return []*Table{t}
}

// e2eMethod adapts the two per-table CE models across periods.
type e2eMethod interface {
	name() string
	step(arrL, arrO []warper.Arrival)
	models() (ce.Estimator, ce.Estimator)
}

// e2eFT fine-tunes both models with labeled arrivals.
type e2eFT struct{ mL, mO ce.Estimator }

func (f *e2eFT) name() string { return "FT" }
func (f *e2eFT) step(arrL, arrO []warper.Arrival) {
	mustUpdate(f.mL, labeledArr(arrL))
	mustUpdate(f.mO, labeledArr(arrO))
}
func (f *e2eFT) models() (ce.Estimator, ce.Estimator) { return f.mL, f.mO }

// e2eNoAdapt leaves the models untouched (Figure 1's "before adaptation").
type e2eNoAdapt struct{ mL, mO ce.Estimator }

func (f *e2eNoAdapt) name() string                         { return "NoAdapt" }
func (f *e2eNoAdapt) step(_, _ []warper.Arrival)           {}
func (f *e2eNoAdapt) models() (ce.Estimator, ce.Estimator) { return f.mL, f.mO }

// e2eWarper runs one Adapter per table.
type e2eWarper struct {
	adL, adO *warper.Adapter
}

func (w *e2eWarper) name() string { return "Warper" }
func (w *e2eWarper) step(arrL, arrO []warper.Arrival) {
	mustPeriod(w.adL, arrL)
	mustPeriod(w.adO, arrO)
}
func (w *e2eWarper) models() (ce.Estimator, ce.Estimator) { return w.adL.M, w.adO.M }

func labeledArr(arr []warper.Arrival) []query.Labeled {
	var out []query.Labeled
	for _, a := range arr {
		if a.HasGT {
			out = append(out, query.Labeled{Pred: a.Pred, Card: a.GT})
		}
	}
	return out
}

// e2eDrift names one continuous-drift schedule of Figure 9.
type e2eDrift struct {
	name string
	// specAt returns the workload spec for period t of total P.
	specAt func(t, p int) string
	// dataDrift, if set, fires once at period 0.
	dataDrift func(e *e2eEnv)
}

func fig9Drifts() []e2eDrift {
	return []e2eDrift{
		{
			name:   "A (w1→w2 persistent)",
			specAt: func(t, p int) string { return "w2" },
		},
		{
			name: "B (w4 first half, back to w1)",
			specAt: func(t, p int) string {
				if t < p/2 {
					return "w4"
				}
				return "w1"
			},
		},
		{
			name:   "C (w1 + data drift)",
			specAt: func(t, p int) string { return "w1" },
			dataDrift: func(e *e2eEnv) {
				dataset.SortTruncateHalf(e.db.Lineitem, tpch.LColQuantity)
			},
		},
	}
}

// Fig9 regenerates Figure 9: under three continuous drifts, per-period CE
// accuracy and S1–S3 query latency for Warper vs FT (latency normalized to
// the true-cardinality plan).
func Fig9(sc Scale, seed int64) []*Table {
	var out []*Table
	const (
		periods    = 8
		perPeriod  = 30
		latQueries = 15
	)
	for _, d := range fig9Drifts() {
		e := newE2E(seed)
		// Seed models trained on w1 over both tables.
		trainL, trainO := e.labeledPairs("w1", "w1", sc.TrainSize)
		mkModels := func(s int64) (ce.Estimator, ce.Estimator) {
			mL := ce.NewLM(ce.LMMLP, e.schL, s)
			mustTrain(mL, trainL)
			mO := ce.NewLM(ce.LMMLP, e.schO, s+1)
			mustTrain(mO, trainO)
			return mL, mO
		}
		wcfg := sc.Warper
		wcfg.Gamma = periods * perPeriod
		wcfg.Seed = seed + 5
		mLW, mOW := mkModels(seed + 100)
		mLF, mOF := mkModels(seed + 100) // same seed: identical start
		methods := []e2eMethod{
			&e2eFT{mL: mLF, mO: mOF},
			&e2eWarper{
				adL: mustAdapter(warper.New(wcfg, mLW, e.schL, e.annL, trainL)),
				adO: mustAdapter(warper.New(wcfg, mOW, e.schO, e.annO, trainO)),
			},
		}
		if d.dataDrift != nil {
			d.dataDrift(e)
		}

		for _, s := range []engine.Scenario{engine.S1BufferSpill, engine.S2JoinType, engine.S3BitmapSide} {
			t := &Table{
				ID: fmt.Sprintf("Figure 9 (%s, Drift %s)", s, d.name),
				Title: "Per-period GMQ and latency (normalized to the true-cardinality plan), " +
					"Warper vs FT under a continuous drift",
				Header: []string{"Period", "GMQ FT", "GMQ Warper", "Lat FT", "Lat Warper"},
			}
			out = append(out, t)
		}
		scenTables := out[len(out)-3:]

		for t := 0; t < periods; t++ {
			spec := d.specAt(t, periods)
			arrL := make([]warper.Arrival, perPeriod)
			arrO := make([]warper.Arrival, perPeriod)
			ls, osQ := e.labeledPairs(spec, spec, perPeriod)
			for i := 0; i < perPeriod; i++ {
				arrL[i] = warper.Arrival{Pred: ls[i].Pred, GT: ls[i].Card, HasGT: true}
				arrO[i] = warper.Arrival{Pred: osQ[i].Pred, GT: osQ[i].Card, HasGT: true}
			}
			testL, testO := e.labeledPairs(spec, spec, latQueries)

			var gmqs [2]float64
			for mi, m := range methods {
				m.step(arrL, arrO)
				mL, mO := m.models()
				gmqs[mi] = (ce.EvalGMQ(mL, testL) + ce.EvalGMQ(mO, testO)) / 2
			}
			for si, s := range []engine.Scenario{engine.S1BufferSpill, engine.S2JoinType, engine.S3BitmapSide} {
				var latFT, latW float64
				for mi, m := range methods {
					mL, mO := m.models()
					var actual, ideal float64
					for i := 0; i < latQueries; i++ {
						good, bad := e.eng.LatencyGap(s,
							testL[i].Pred, testO[i].Pred,
							mL.Estimate(testL[i].Pred), mO.Estimate(testO[i].Pred),
							testL[i].Card, testO[i].Card)
						actual += float64(bad)
						ideal += float64(good)
					}
					if mi == 0 {
						latFT = actual / ideal
					} else {
						latW = actual / ideal
					}
				}
				scenTables[si].Rows = append(scenTables[si].Rows, []string{
					fmt.Sprint(t + 1), f2(gmqs[0]), f2(gmqs[1]), f2(latFT), f2(latW),
				})
			}
		}
	}
	return out
}

// Fig1 regenerates the Figure 1 motivation: a workload drift on the L
// predicate of the L⋈O template; adapting with Warper recovers both CE
// accuracy and query latency, while no adaptation stays degraded.
func Fig1(sc Scale, seed int64) []*Table {
	e := newE2E(seed)
	// Train on w2 (low-cardinality, log-concentrated predicates) and drift
	// to w1 (wider uniform ranges): the stale model under-estimates the
	// drifted queries, which is the error direction that skips spill
	// planning and regresses latency (§4.2).
	trainL, trainO := e.labeledPairs("w2", "w1", sc.TrainSize)
	const (
		periods   = 6
		perPeriod = 30
	)
	mkModels := func(s int64) (ce.Estimator, ce.Estimator) {
		mL := ce.NewLM(ce.LMMLP, e.schL, s)
		mustTrain(mL, trainL)
		mO := ce.NewLM(ce.LMMLP, e.schO, s+1)
		mustTrain(mO, trainO)
		return mL, mO
	}
	wcfg := sc.Warper
	wcfg.Gamma = periods * perPeriod
	wcfg.Seed = seed + 3
	mLW, mOW := mkModels(seed + 200)
	mLN, mON := mkModels(seed + 200)
	methods := []e2eMethod{
		&e2eNoAdapt{mL: mLN, mO: mON},
		&e2eWarper{
			adL: mustAdapter(warper.New(wcfg, mLW, e.schL, e.annL, trainL)),
			adO: mustAdapter(warper.New(wcfg, mOW, e.schO, e.annO, trainO)),
		},
	}
	t := &Table{
		ID: "Figure 1",
		Title: "Motivation: drift w2→w1 on the L predicate of L⋈O; GMQ and S1 latency " +
			"(normalized to true-card plans), no adaptation vs Warper",
		Header: []string{"Period", "GMQ NoAdapt", "GMQ Warper", "Lat NoAdapt", "Lat Warper"},
	}
	for p := 0; p < periods; p++ {
		ls, osQ := e.labeledPairs("w1", "w1", perPeriod)
		arrL := make([]warper.Arrival, perPeriod)
		arrO := make([]warper.Arrival, perPeriod)
		for i := 0; i < perPeriod; i++ {
			arrL[i] = warper.Arrival{Pred: ls[i].Pred, GT: ls[i].Card, HasGT: true}
			arrO[i] = warper.Arrival{Pred: osQ[i].Pred, GT: osQ[i].Card, HasGT: true}
		}
		testL, testO := e.labeledPairs("w1", "w1", 25)
		row := []string{fmt.Sprint(p + 1)}
		var gmqCells, latCells []string
		for _, m := range methods {
			m.step(arrL, arrO)
			mL, mO := m.models()
			gmq := (ce.EvalGMQ(mL, testL) + ce.EvalGMQ(mO, testO)) / 2
			var actual, ideal float64
			for i := range testL {
				good, bad := e.eng.LatencyGap(engine.S1BufferSpill,
					testL[i].Pred, testO[i].Pred,
					mL.Estimate(testL[i].Pred), mO.Estimate(testO[i].Pred),
					testL[i].Card, testO[i].Card)
				actual += float64(bad)
				ideal += float64(good)
			}
			gmqCells = append(gmqCells, f2(gmq))
			latCells = append(latCells, f2(actual/ideal))
		}
		row = append(row, gmqCells...)
		row = append(row, latCells...)
		t.Rows = append(t.Rows, row)
	}
	return []*Table{t}
}
