package experiments

import (
	"math/rand"

	"warper/internal/annotator"
	"warper/internal/ce"
	"warper/internal/imdb"
	"warper/internal/metrics"
	"warper/internal/query"
)

// Table7d regenerates Table 7d: adapting the MSCN join estimator on the
// IMDB-like star schema under workload drift c2 (the paper drifts the
// predicate style w4 → w1 while keeping the join templates).
//
// Warper's single-table GAN does not directly synthesize join queries;
// following the paper's design (Warper "applies directly to the predicates
// that the model can support"), the generator here synthesizes per-table
// predicates from the new workload's predicate distribution and grafts them
// onto observed join templates. Fine-tuning (FT) is the baseline.
func Table7d(sc Scale, seed int64) []*Table {
	t := &Table{
		ID:     "Table 7d",
		Title:  "Join CE: MSCN on IMDB-like star schema, drift c2 (w4 → w1 predicates)",
		Header: []string{"Dataset", "Cs", "Wkld", "Model", "δm", "δjs", "Δ.5", "Δ.8", "Δ1"},
	}
	var ftAgg, wAgg *aggCurve
	var dmSum float64
	for run := 0; run < sc.Runs; run++ {
		runSeed := seed + int64(run)*15485863
		rng := rand.New(rand.NewSource(runSeed))
		db := imdb.Generate(imdb.Config{Titles: 2000}, rng)
		ja := annotator.NewJoin(db.Tables()...)

		trainW := &imdb.JoinWorkload{DB: db, PredStyle: "sample"} // w4-like
		newW := &imdb.JoinWorkload{DB: db, PredStyle: "uniform"}  // w1-like
		train := mustJoinAnnotateAll(ja, trainW.Generate(sc.TrainSize, rng))
		stream := mustJoinAnnotateAll(ja, newW.Generate(sc.StreamSize, rng))
		test := mustJoinAnnotateAll(ja, newW.Generate(sc.TestSize, rng))

		m := ce.NewMSCN(db.Catalog, runSeed+1)
		mustTrainJoin(m, train)

		oracle := ce.NewMSCN(db.Catalog, runSeed+2)
		mustTrainJoin(oracle, stream)
		dmSum += metrics.DeltaM(mustJoinGMQ(m, test), mustJoinGMQ(oracle, test))

		// FT: fine-tune with each period's labeled arrivals.
		ft := m.Clone().(*ce.MSCN)
		ftCurve := &metrics.Curve{}
		ftCurve.Append(0, mustJoinGMQ(ft, test))
		for start := 0; start < len(stream); start += sc.PeriodSize {
			end := minI(start+sc.PeriodSize, len(stream))
			mustUpdateJoin(ft, stream[:end]) // all labeled arrivals so far
			ftCurve.Append(float64(end), mustJoinGMQ(ft, test))
		}

		// Warper-for-joins: synthesize additional join queries by pairing
		// observed join templates with per-table predicates resampled (with
		// noise) from the new arrivals, annotate them, fine-tune on
		// arrivals + synthetic.
		wm := m.Clone().(*ce.MSCN)
		wCurve := &metrics.Curve{}
		wCurve.Append(0, mustJoinGMQ(wm, test))
		var synthPool []query.LabeledJoin
		for start := 0; start < len(stream); start += sc.PeriodSize {
			end := minI(start+sc.PeriodSize, len(stream))
			arrivals := stream[start:end]
			nGen := len(arrivals) // generate 1× to amplify the sparse join stream
			var synth []*query.JoinQuery
			for i := 0; i < nGen; i++ {
				tmpl := arrivals[rng.Intn(len(arrivals))].Query.Clone()
				// Resample each table's predicate from another arrival with
				// the same table, mimicking the generator's role.
				for _, name := range tmpl.Tables {
					donor := arrivals[rng.Intn(len(arrivals))]
					if p, ok := donor.Query.Preds[name]; ok {
						tmpl.SetPred(name, jitterPred(p, db.Catalog.Schemas[name], rng))
					}
				}
				synth = append(synth, tmpl)
			}
			synthPool = append(synthPool, mustJoinAnnotateAll(ja, synth)...)
			update := append(append([]query.LabeledJoin(nil), stream[:end]...), synthPool...)
			mustUpdateJoin(wm, update)
			wCurve.Append(float64(end), mustJoinGMQ(wm, test))
		}
		ftAgg = ftAgg.add(ftCurve)
		wAgg = wAgg.add(wCurve)
	}
	ft, w := ftAgg.mean(sc.Runs), wAgg.mean(sc.Runs)
	d5, d8, d1 := metrics.SpeedupTriple(ft, w)
	t.Rows = append(t.Rows, []string{
		"imdb", "c2", "w4/w1", "MSCN", f1(dmSum / float64(sc.Runs)), "-", f1(d5), f1(d8), f1(d1),
	})
	return []*Table{t}
}

// jitterPred adds small Gaussian noise to a predicate's constrained bounds.
func jitterPred(p query.Predicate, sch *query.Schema, rng *rand.Rand) query.Predicate {
	out := p.Clone()
	for i := range out.Lows {
		span := sch.Maxs[i] - sch.Mins[i]
		if out.Lows[i] > sch.Mins[i] || out.Highs[i] < sch.Maxs[i] {
			out.Lows[i] += rng.NormFloat64() * 0.05 * span
			out.Highs[i] += rng.NormFloat64() * 0.05 * span
		}
	}
	return out.Normalize(sch)
}

func minI(a, b int) int {
	if a < b {
		return a
	}
	return b
}
