package experiments

import (
	"fmt"
	"math/rand"

	"warper/internal/adapt"
	"warper/internal/mathx"
	"warper/internal/pool"
	"warper/internal/query"
	"warper/internal/workload"
)

// projectPreds fits a 2-d PCA over all groups' featurized predicates (the §2
// visualization method) and returns per-group 2-d coordinates.
func projectPreds(groups map[string][]query.Predicate, sch *query.Schema) map[string][][2]float64 {
	d := sch.FeatureDim()
	var all []query.Predicate
	var names []string
	for name, ps := range groups {
		names = append(names, name)
		all = append(all, ps...)
	}
	_ = names
	X := mathx.NewMatrix(len(all), d)
	for i, p := range all {
		copy(X.Data[i*d:(i+1)*d], p.Featurize(sch))
	}
	pca := mathx.FitPCA(X, 2)
	out := make(map[string][][2]float64, len(groups))
	for name, ps := range groups {
		coords := make([][2]float64, len(ps))
		for i, p := range ps {
			z := pca.Project(p.Featurize(sch))
			coords[i] = [2]float64{z[0], z[1]}
		}
		out[name] = coords
	}
	return out
}

// summarizeCloud reduces a 2-d point cloud to its centroid and spread for a
// compact textual rendering of the scatter plots.
func summarizeCloud(pts [][2]float64) (cx, cy, sx, sy float64) {
	if len(pts) == 0 {
		return 0, 0, 0, 0
	}
	xs := make(mathx.Vector, len(pts))
	ys := make(mathx.Vector, len(pts))
	for i, p := range pts {
		xs[i], ys[i] = p[0], p[1]
	}
	return xs.Mean(), ys.Mean(), xs.Std(), ys.Std()
}

// Fig5 regenerates Figure 5: PCA visualizations of the w1–w5 workloads on
// PRSA. Each row summarizes one workload's 2-d point cloud (centroid and
// spread); the cmd/driftviz tool emits the raw per-point CSV.
func Fig5(sc Scale, seed int64) []*Table {
	rng := rand.New(rand.NewSource(seed))
	rows := sc.Rows
	if rows == 0 {
		rows = 6000
	}
	tbl := datasetByName("prsa", rows, rng)
	sch := query.SchemaOf(tbl)
	groups := map[string][]query.Predicate{}
	for _, spec := range []string{"w1", "w2", "w3", "w4", "w5"} {
		g := workload.New(spec, tbl, sch, wkldOpts)
		groups[spec] = workload.Generate(g, 200, rng)
	}
	proj := projectPreds(groups, sch)
	t := &Table{
		ID:     "Figure 5",
		Title:  "PCA visualization of workloads on PRSA (per-cloud centroid ± spread)",
		Header: []string{"Workload", "centroid x", "centroid y", "spread x", "spread y"},
	}
	for _, spec := range []string{"w1", "w2", "w3", "w4", "w5"} {
		cx, cy, sx, sy := summarizeCloud(proj[spec])
		t.Rows = append(t.Rows, []string{spec, f3(cx), f3(cy), f3(sx), f3(sy)})
	}
	return []*Table{t}
}

// Fig7 regenerates Figure 7: during a c2 adaptation on PRSA, the generated
// (gen) and picked queries should track the incoming (new) distribution
// rather than the training one. Rows report centroid distances in PCA space.
func Fig7(sc Scale, seed int64) []*Table {
	env := NewEnv("prsa", "w12", "w345", "lm-mlp", sc, seed)
	ad, _ := env.NewWarperAdapter(sc, seed+17)
	periods := adapt.SplitPeriods(adapt.ArrivalsOf(env.Stream, true), sc.PeriodSize)
	for _, p := range periods {
		mustPeriod(ad, p)
	}
	groups := map[string][]query.Predicate{}
	for _, e := range ad.Pool.Entries {
		switch e.Source {
		case pool.SrcTrain:
			groups["train"] = append(groups["train"], e.Pred)
		case pool.SrcNew:
			groups["new"] = append(groups["new"], e.Pred)
		case pool.SrcGen:
			groups["gen"] = append(groups["gen"], e.Pred)
		}
	}
	proj := projectPreds(groups, env.Sch)
	t := &Table{
		ID:     "Figure 7",
		Title:  "Adaptation visualization on PRSA (c2, w12/345): cloud centroids in PCA space",
		Header: []string{"Group", "n", "centroid x", "centroid y", "spread x", "spread y", "dist to new centroid"},
	}
	nx, ny, _, _ := summarizeCloud(proj["new"])
	for _, name := range []string{"train", "new", "gen"} {
		cx, cy, sx, sy := summarizeCloud(proj[name])
		dx, dy := cx-nx, cy-ny
		dist := mathx.Vector{dx, dy}.Norm()
		t.Rows = append(t.Rows, []string{
			name, fmt.Sprint(len(proj[name])), f3(cx), f3(cy), f3(sx), f3(sy), f3(dist),
		})
	}
	return []*Table{t}
}
