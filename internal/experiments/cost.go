package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"warper/internal/adapt"
	"warper/internal/simclock"
	"warper/internal/workload"
)

// costProfile holds measured per-component costs for one dataset.
type costProfile struct {
	AnnotatePerQuery time.Duration // c_gt
	WarperBuild      time.Duration // one-time 𝔼/𝔾 pre-train + per-invocation component updates
	ModelUpdate      time.Duration // CE model update per invocation
	HEMBuild         time.Duration // HEM's model-evaluation pass
}

// measureCosts runs a short calibrated workload and extracts real compute
// costs, which the Table 6 / Table 11 arithmetic then scales to the paper's
// windows and arrival rates (§4.3: cost = c_gt·n_a + C).
func measureCosts(ds string, sc Scale, seed int64) costProfile {
	env := NewEnv(ds, "w12", "w345", "lm-mlp", sc, seed)
	rng := rand.New(rand.NewSource(seed + 5))

	var prof costProfile

	// Annotation: time a fresh batch.
	env.Ann.ResetMeters()
	probe := workload.Generate(env.NewGen, 50, rng)
	mustAnnotateAll(env.Ann, probe)
	// AnnotateAll shares one scan across the batch; per-query cost for
	// separately arriving queries uses single-query scans.
	env.Ann.ResetMeters()
	for _, p := range probe[:10] {
		mustCount(env.Ann, p)
	}
	prof.AnnotatePerQuery = env.Ann.MeanCostPerQuery()

	// Warper: component build + a few invocations.
	ad, _ := env.NewWarperAdapter(sc, seed+7)
	probeN := minI(len(env.Stream), 80)
	periods := adapt.SplitPeriods(adapt.ArrivalsOf(env.Stream[:probeN], true), probeN/2)
	for _, p := range periods {
		mustPeriod(ad, p)
	}
	prof.WarperBuild = ad.Ledger.Get("pretrain") + ad.Ledger.Get("gan") + ad.Ledger.Get("ae") +
		ad.Ledger.Get("gen") + ad.Ledger.Get("pick")
	prof.ModelUpdate = ad.Ledger.Get("model")

	// HEM: its extra cost is one model evaluation pass over arrivals.
	w := simclock.StartWatch()
	for _, lq := range env.Stream[:40] {
		env.Model.Estimate(lq.Pred)
	}
	prof.HEMBuild = w.Stop()
	return prof
}

// table6Scenarios are the (window, arrival-rate) combinations of Table 6.
var table6Scenarios = []struct {
	window time.Duration
	rate   float64 // queries per second
}{
	{10 * time.Minute, 10},
	{10 * time.Minute, 1},
	{30 * time.Minute, 0.2},
}

// Table6 regenerates Table 6: per-method cost overhead (annotation cost,
// model building cost, average CPU utilization at three arrival rates).
// Costs are measured on the scaled tables and extrapolated with the paper's
// §4.3 cost model.
func Table6(sc Scale, seed int64) []*Table {
	t := &Table{
		ID:    "Table 6",
		Title: "Cost overhead to adapt a CE model (measured on scaled tables)",
		Header: []string{"Dataset", "Anno s/query", "Warper build", "Scenario",
			"AUG CPU%", "HEM CPU%", "Warper CPU%"},
	}
	for _, ds := range datasets {
		prof := measureCosts(ds, sc, seed)
		for _, scen := range table6Scenarios {
			nT := scen.rate * scen.window.Seconds()
			nG := 0.1 * nT // n_g = 10%·n_t for AUG, HEM and Warper
			annBusy := time.Duration(nG * float64(prof.AnnotatePerQuery))
			augBusy := annBusy + prof.ModelUpdate
			hemBusy := annBusy + prof.ModelUpdate + prof.HEMBuild
			warperBusy := annBusy + prof.ModelUpdate + prof.WarperBuild
			t.Rows = append(t.Rows, []string{
				ds,
				fmt.Sprintf("%.4f", prof.AnnotatePerQuery.Seconds()),
				fmt.Sprintf("%.1fs", prof.WarperBuild.Seconds()),
				fmt.Sprintf("%s @ %g q/s", scen.window, scen.rate),
				f3(simclock.CPUPercent(augBusy, scen.window)),
				f3(simclock.CPUPercent(hemBusy, scen.window)),
				f3(simclock.CPUPercent(warperBusy, scen.window)),
			})
		}
	}
	return []*Table{t}
}

// Table11 regenerates Table 11: CPU utilization as the generated-query
// budget n_g varies (0.1×..3× of n_t), 30-minute window, one query per 5 s.
func Table11(sc Scale, seed int64) []*Table {
	t := &Table{
		ID:     "Table 11",
		Title:  "Trading compute for speedup: CPU cost as n_g varies (30 min @ 0.2 q/s)",
		Header: []string{"Dataset", "n_g", "Anno busy", "Components busy", "CPU%"},
	}
	window := 30 * time.Minute
	nT := 0.2 * window.Seconds()
	for _, ds := range []string{"prsa", "poker"} {
		prof := measureCosts(ds, sc, seed)
		for _, frac := range fig11Fractions {
			nG := frac * nT
			annBusy := time.Duration(nG * float64(prof.AnnotatePerQuery))
			busy := annBusy + prof.ModelUpdate + prof.WarperBuild
			t.Rows = append(t.Rows, []string{
				ds,
				fmt.Sprintf("%.1fx", frac),
				fmt.Sprintf("%.2fs", annBusy.Seconds()),
				fmt.Sprintf("%.2fs", (prof.ModelUpdate + prof.WarperBuild).Seconds()),
				f3(simclock.CPUPercent(busy, window)),
			})
		}
	}
	return []*Table{t}
}
