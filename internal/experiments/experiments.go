// Package experiments regenerates every table and figure of the paper's
// evaluation (§4): one function per experiment, each returning printable
// Tables with the same rows/series the paper reports. The cmd/warperbench
// binary and the repository's benchmarks drive these functions.
package experiments

import (
	"fmt"
	"strings"

	"warper/internal/warper"
)

// Scale sizes an experiment run. The paper uses 30-minute windows, queries
// every 5 s and 10 repetitions; these knobs let the same code run at
// CI-scale or paper-scale.
type Scale struct {
	// TrainSize is |𝕀train|, the original training corpus per dataset.
	TrainSize int
	// StreamSize is the number of new-workload queries that arrive over the
	// whole test period.
	StreamSize int
	// PeriodSize is the number of arrivals per adaptation period.
	PeriodSize int
	// TestSize is the hold-out evaluation set size.
	TestSize int
	// Runs is the number of repetitions aggregated per configuration.
	Runs int
	// Rows overrides dataset row counts (0 = package defaults).
	Rows int
	// Warper holds the Warper configuration template (seed is set per run).
	Warper warper.Config
}

// DefaultScale is the full reproduction scale.
func DefaultScale() Scale {
	cfg := warper.DefaultConfig()
	cfg.Hidden = 64
	cfg.Depth = 2
	cfg.NIters = 60
	cfg.PickSize = 400
	return Scale{
		TrainSize:  600,
		StreamSize: 300,
		PeriodSize: 10,
		TestSize:   200,
		Runs:       5,
		Rows:       0,
		Warper:     cfg,
	}
}

// QuickScale is a shrunken configuration for benchmarks and smoke tests.
func QuickScale() Scale {
	s := DefaultScale()
	s.TrainSize = 250
	s.StreamSize = 120
	s.PeriodSize = 10
	s.TestSize = 80
	s.Runs = 1
	s.Rows = 1500
	s.Warper.NIters = 30
	s.Warper.PickSize = 150
	return s
}

// gamma returns the γ used for a scale: the stream size, so per-period
// arrivals always count as "inadequate" (the c2 regime under test).
func (s Scale) gamma() int { return s.StreamSize }

// Table is one printable experiment output.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
