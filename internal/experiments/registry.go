package experiments

import (
	"fmt"
	"sort"
)

// Runner is one registered experiment entry point.
type Runner func(sc Scale, seed int64) []*Table

// registry maps experiment ids (as used by `warperbench -exp`) to runners.
var registry = map[string]Runner{
	"fig1":    Fig1,
	"fig5":    Fig5,
	"fig6":    Fig6,
	"fig7":    Fig7,
	"fig8":    Fig8,
	"fig9":    Fig9,
	"fig10":   Fig10,
	"fig11":   Fig11,
	"table6":  Table6,
	"table7a": Table7a,
	"table7b": Table7b,
	"table7c": Table7c,
	"table7d": Table7d,
	"table8":  Table8,
	"table9":  Table9,
	"table10": Table10,
	"table11": Table11,
	// Extensions beyond the paper's tables.
	"ext-histogram": ExtHistogram,
}

// Names returns the registered experiment ids, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Lookup returns the runner for an experiment id.
func Lookup(name string) (Runner, error) {
	r, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (known: %v)", name, Names())
	}
	return r, nil
}
