package experiments

import (
	"context"
	"warper/internal/annotator"
	"warper/internal/ce"
	"warper/internal/metrics"
	"warper/internal/query"
	"warper/internal/warper"
)

// The experiment harness runs offline over datasets and workloads that are
// consistent by construction (every generator draws predicates over the
// table's own schema), so annotation and model-update failures indicate a
// broken experiment setup rather than a recoverable condition. These
// helpers convert such errors into panics to keep the table-generation code
// readable; the serving stack, by contrast, threads the errors through
// (see internal/serve) and warperlint's panicfree rule keeps it that way.

// mustCount annotates one predicate, panicking on schema mismatch.
func mustCount(ann *annotator.Annotator, p query.Predicate) float64 {
	card, err := ann.Count(context.Background(), p)
	if err != nil {
		panic("experiments: annotate failed: " + err.Error())
	}
	return card
}

// mustTrain trains a model, panicking when the backend cannot fit.
func mustTrain(m ce.Estimator, examples []query.Labeled) {
	if err := m.Train(examples); err != nil {
		panic("experiments: train failed: " + err.Error())
	}
}

// mustUpdate updates a model, panicking when the backend cannot fit.
func mustUpdate(m ce.Estimator, examples []query.Labeled) {
	if err := m.Update(examples); err != nil {
		panic("experiments: update failed: " + err.Error())
	}
}

// mustAdapter unwraps warper.New.
func mustAdapter(a *warper.Adapter, err error) *warper.Adapter {
	if err != nil {
		panic("experiments: build adapter failed: " + err.Error())
	}
	return a
}

// mustPeriod unwraps Adapter.Period.
func mustPeriod(a *warper.Adapter, arrivals []warper.Arrival) warper.Report {
	rep, err := a.Period(arrivals)
	if err != nil {
		panic("experiments: period failed: " + err.Error())
	}
	return rep
}

// mustAnnotateAll labels a batch of predicates, panicking on mismatch.
func mustAnnotateAll(ann *annotator.Annotator, ps []query.Predicate) []query.Labeled {
	out, err := ann.AnnotateAll(context.Background(), ps)
	if err != nil {
		panic("experiments: annotate failed: " + err.Error())
	}
	return out
}

// mustJoinAnnotateAll labels a batch of join queries, panicking on
// malformed queries.
func mustJoinAnnotateAll(ja *annotator.JoinAnnotator, qs []*query.JoinQuery) []query.LabeledJoin {
	out, err := ja.AnnotateAll(context.Background(), qs)
	if err != nil {
		panic("experiments: join annotate failed: " + err.Error())
	}
	return out
}

// mustTrainJoin trains a join model, panicking on failure.
func mustTrainJoin(m ce.JoinEstimator, examples []query.LabeledJoin) {
	if err := m.TrainJoin(examples); err != nil {
		panic("experiments: join train failed: " + err.Error())
	}
}

// mustUpdateJoin updates a join model, panicking on failure.
func mustUpdateJoin(m ce.JoinEstimator, examples []query.LabeledJoin) {
	if err := m.UpdateJoin(examples); err != nil {
		panic("experiments: join update failed: " + err.Error())
	}
}

// mustJoinGMQ unwraps ce.EvalJoinGMQ.
func mustJoinGMQ(m ce.JoinEstimator, test []query.LabeledJoin) float64 {
	gmq, err := ce.EvalJoinGMQ(m, test)
	if err != nil {
		panic("experiments: join eval failed: " + err.Error())
	}
	return gmq
}

// mustCurve unwraps adapt.Runner.Run.
func mustCurve(c *metrics.Curve, err error) *metrics.Curve {
	if err != nil {
		panic("experiments: adaptation run failed: " + err.Error())
	}
	return c
}
