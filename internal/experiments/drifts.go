package experiments

import (
	"math/rand"

	"warper/internal/adapt"
	"warper/internal/ce"
	"warper/internal/dataset"
	"warper/internal/metrics"
	"warper/internal/query"
	"warper/internal/warper"
	"warper/internal/workload"
)

// Table7c regenerates Table 7c: data drift (c1) and label-starved workload
// drift (c3), LM-mlp, Warper's picker vs random annotation at an identical
// budget.
func Table7c(sc Scale, seed int64) []*Table {
	t := &Table{
		ID:     "Table 7c",
		Title:  "Different drifts (c1 data drift, c3 slow labeling), LM-mlp",
		Header: []string{"Dataset", "Cs", "Wkld", "Model", "δm", "δjs", "Δ.5", "Δ.8", "Δ1"},
	}
	for _, ds := range datasets {
		row := runC1(ds, sc, seed)
		t.Rows = append(t.Rows, row)
	}
	for _, ds := range datasets {
		row := runC3(ds, sc, seed)
		t.Rows = append(t.Rows, row)
	}
	return []*Table{t}
}

// runC1 reproduces the c1 construction of §4.1.2: the table is sorted by one
// column and truncated in half; every stored label goes stale; the workload
// is unchanged. Warper's error-stratified picker chooses which training
// queries to re-annotate; the FT baseline re-annotates uniformly at random
// with the same per-period budget.
func runC1(ds string, sc Scale, seed int64) []string {
	var ftAgg, wAgg *aggCurve
	var dmSum float64
	for run := 0; run < sc.Runs; run++ {
		runSeed := seed + int64(run)*104729
		rng := rand.New(rand.NewSource(runSeed))
		env := NewEnv(ds, "w12345", "w12345", "lm-mlp", sc, runSeed)

		// Data drift: sort by column 0 and truncate in half.
		dataset.SortTruncateHalf(env.Tbl, 0)
		// The test set carries post-drift ground truth for the unchanged
		// workload.
		test := mustAnnotateAll(env.Ann, workload.Generate(env.TrainGen, sc.TestSize, rng))

		// Oracle for δ_m: trained exclusively on post-drift labels.
		oracle := NewModel("lm-mlp", env.Sch, runSeed+3)
		mustTrain(oracle, mustAnnotateAll(env.Ann, workload.Generate(env.TrainGen, sc.StreamSize, rng)))
		dmSum += metrics.DeltaM(ce.EvalGMQ(env.Model, test), ce.EvalGMQ(oracle, test))
		// δ_js is 0 by construction: the workload did not change.

		budget := sc.PeriodSize
		periods := sc.StreamSize / sc.PeriodSize

		// FT baseline: re-annotate `budget` random training queries per
		// period and fine-tune on them.
		ftModel := env.Model.Clone()
		ftCurve := &metrics.Curve{}
		ftCurve.Append(0, ce.EvalGMQ(ftModel, test))
		perm := rng.Perm(len(env.Train))
		used := 0
		for p := 0; p < periods; p++ {
			var batch []query.Labeled
			for i := 0; i < budget && used < len(perm); i++ {
				lq := env.Train[perm[used]]
				used++
				batch = append(batch, query.Labeled{Pred: lq.Pred, Card: mustCount(env.Ann, lq.Pred)})
			}
			if len(batch) == 0 {
				break
			}
			mustUpdate(ftModel, batch)
			ftCurve.Append(float64(used), ce.EvalGMQ(ftModel, test))
		}

		// Warper: the adapter detects c1 via telemetry and uses the
		// error-stratified picker under the same per-period budget.
		cfg := sc.Warper
		cfg.Seed = runSeed + 11
		cfg.Gamma = sc.gamma()
		cfg.AnnotateBudget = budget
		wModel := env.Model.Clone()
		ad := mustAdapter(warper.New(cfg, wModel, env.Sch, env.Ann, env.Train))
		wCurve := &metrics.Curve{}
		wCurve.Append(0, ce.EvalGMQ(wModel, test))
		spent := 0
		for p := 0; p < periods; p++ {
			arrivals := make([]warper.Arrival, budget/2)
			for i := range arrivals {
				pr := env.TrainGen.Gen(rng)
				arrivals[i] = warper.Arrival{Pred: pr, GT: mustCount(env.Ann, pr), HasGT: true}
			}
			rep := mustPeriod(ad, arrivals)
			spent += rep.Annotated
			wCurve.Append(float64(spent), ce.EvalGMQ(wModel, test))
		}
		ftAgg = ftAgg.add(ftCurve)
		wAgg = wAgg.add(wCurve)
	}
	ft, w := ftAgg.mean(sc.Runs), wAgg.mean(sc.Runs)
	d5, d8, d1 := metrics.SpeedupTriple(ft, w)
	return []string{ds, "c1", "w1-5", "LM-mlp", f1(dmSum / float64(sc.Runs)), "0.00", f1(d5), f1(d8), f1(d1)}
}

// runC3 reproduces the c3 scenario: the workload drifts but arrivals carry
// no labels; both methods annotate with the same per-period budget — FT
// picks uniformly at random, Warper uses the stratified picker.
func runC3(ds string, sc Scale, seed int64) []string {
	var ftAgg, wAgg *aggCurve
	var dmSum, jsSum float64
	for run := 0; run < sc.Runs; run++ {
		runSeed := seed + int64(run)*104729
		rng := rand.New(rand.NewSource(runSeed))
		env := NewEnv(ds, "w12", "w345", "lm-mlp", sc, runSeed)
		dmSum += env.DeltaM
		jsSum += env.DeltaJS

		budget := sc.PeriodSize / 2
		periods := adapt.SplitPeriods(adapt.ArrivalsOf(env.Stream, false), sc.PeriodSize)

		// FT baseline: annotate `budget` random arrivals per period.
		ftModel := env.Model.Clone()
		ftCurve := &metrics.Curve{}
		ftCurve.Append(0, ce.EvalGMQ(ftModel, env.Test))
		spent := 0
		for _, period := range periods {
			var batch []query.Labeled
			idx := rng.Perm(len(period))
			for i := 0; i < budget && i < len(idx); i++ {
				pr := period[idx[i]].Pred
				batch = append(batch, query.Labeled{Pred: pr, Card: mustCount(env.Ann, pr)})
				spent++
			}
			mustUpdate(ftModel, batch)
			ftCurve.Append(float64(spent), ce.EvalGMQ(ftModel, env.Test))
		}

		// Warper with the same budget.
		cfg := sc.Warper
		cfg.Seed = runSeed + 11
		cfg.Gamma = sc.gamma()
		cfg.AnnotateBudget = budget
		cfg.GenFraction = 0.001 // c3: picker only, no generation
		wModel := env.Model.Clone()
		ad := mustAdapter(warper.New(cfg, wModel, env.Sch, env.Ann, env.Train))
		wCurve := &metrics.Curve{}
		wCurve.Append(0, ce.EvalGMQ(wModel, env.Test))
		wSpent := 0
		for _, period := range periods {
			rep := mustPeriod(ad, period)
			wSpent += rep.Annotated
			wCurve.Append(float64(wSpent), ce.EvalGMQ(wModel, env.Test))
		}
		ftAgg = ftAgg.add(ftCurve)
		wAgg = wAgg.add(wCurve)
	}
	ft, w := ftAgg.mean(sc.Runs), wAgg.mean(sc.Runs)
	d5, d8, d1 := metrics.SpeedupTriple(ft, w)
	return []string{ds, "c3", "w12/345", "LM-mlp",
		f1(dmSum / float64(sc.Runs)), f2(jsSum / float64(sc.Runs)), f1(d5), f1(d8), f1(d1)}
}

// aggCurve accumulates curves pointwise across runs. Curves from different
// runs may have slightly different x grids (annotation counts); the
// aggregate keeps the first run's grid and takes the pointwise median by
// point index (robust to one divergent run).
type aggCurve struct {
	xs     []float64
	points [][]float64
}

func (a *aggCurve) add(c *metrics.Curve) *aggCurve {
	if a == nil {
		a = &aggCurve{xs: append([]float64(nil), c.Queries...), points: make([][]float64, c.Len())}
	}
	for i := 0; i < len(a.points) && i < c.Len(); i++ {
		a.points[i] = append(a.points[i], c.GMQ[i])
	}
	return a
}

func (a *aggCurve) mean(runs int) *metrics.Curve {
	out := &metrics.Curve{}
	for i := range a.points {
		out.Append(a.xs[i], median(a.points[i]))
	}
	return out.MedianSmooth(3)
}
