package experiments

import (
	"fmt"
	"math/rand"

	"warper/internal/adapt"
	"warper/internal/annotator"
	"warper/internal/ce"
	"warper/internal/dataset"
	"warper/internal/drift"
	"warper/internal/metrics"
	"warper/internal/pool"
	"warper/internal/query"
	"warper/internal/warper"
	"warper/internal/workload"
)

// Env is one fully prepared single-table experiment environment: the table,
// a trained CE model, the labeled query stream from the drifted workload and
// a hold-out test set.
type Env struct {
	Dataset string
	Tbl     *dataset.Table
	Sch     *query.Schema
	Ann     *annotator.Annotator
	Model   ce.Estimator

	Train  []query.Labeled
	Stream []query.Labeled // drifted-workload arrivals, labeled
	Test   []query.Labeled // drifted-workload hold-out

	TrainGen workload.Generator
	NewGen   workload.Generator

	DeltaM  float64
	DeltaJS float64
}

// wkldOpts is the shared predicate-generation option set (1–2 constrained
// columns keeps cardinalities informative at the scaled row counts).
var wkldOpts = workload.Options{MinConstrained: 1, MaxConstrained: 2}

// NewEnv builds an environment: dsName in {higgs, prsa, poker}; trainSpec /
// newSpec in the paper's notation ("w12", "w345", …); model in
// {lm-mlp, lm-gbt, lm-ply, lm-rbf, mscn}.
func NewEnv(dsName, trainSpec, newSpec, model string, sc Scale, seed int64) *Env {
	rng := rand.New(rand.NewSource(seed))
	tbl := datasetByName(dsName, sc.Rows, rng)
	sch := query.SchemaOf(tbl)
	ann := annotator.New(tbl)
	e := &Env{Dataset: dsName, Tbl: tbl, Sch: sch, Ann: ann}
	e.TrainGen = workload.Parse(trainSpec, tbl, sch, wkldOpts)
	e.NewGen = workload.Parse(newSpec, tbl, sch, wkldOpts)

	e.Train = mustAnnotateAll(ann, workload.Generate(e.TrainGen, sc.TrainSize, rng))
	e.Stream = mustAnnotateAll(ann, workload.Generate(e.NewGen, sc.StreamSize, rng))
	e.Test = mustAnnotateAll(ann, workload.Generate(e.NewGen, sc.TestSize, rng))

	e.Model = NewModel(model, sch, seed+1)
	mustTrain(e.Model, e.Train)

	// Drift metrics: δ_m (blind accuracy gap vs a model trained exclusively
	// on the new workload) and δ_js (intrinsic distribution distance).
	oracle := NewModel(model, sch, seed+2)
	mustTrain(oracle, e.Stream)
	e.DeltaM = metrics.DeltaM(ce.EvalGMQ(e.Model, e.Test), ce.EvalGMQ(oracle, e.Test))
	var trainPreds, newPreds []query.Predicate
	for _, lq := range e.Train {
		trainPreds = append(trainPreds, lq.Pred)
	}
	for _, lq := range e.Stream {
		newPreds = append(newPreds, lq.Pred)
	}
	e.DeltaJS = drift.DeltaJS(newPreds, trainPreds, sch, drift.DefaultJSConfig())
	return e
}

// datasetByName builds a synthetic evaluation table at the experiment scale
// (rows = 0 picks per-dataset defaults tuned for the default scale).
func datasetByName(name string, rows int, rng *rand.Rand) *dataset.Table {
	switch name {
	case "higgs":
		if rows == 0 {
			rows = 8000
		}
		return dataset.Higgs(rows, rng)
	case "prsa":
		if rows == 0 {
			rows = 6000
		}
		return dataset.PRSA(rows, rng)
	case "poker":
		if rows == 0 {
			rows = 8000
		}
		return dataset.Poker(rows, rng)
	default:
		panic("experiments: unknown dataset " + name)
	}
}

// NewModel builds an untrained CE model by name.
func NewModel(name string, sch *query.Schema, seed int64) ce.Estimator {
	switch name {
	case "lm-mlp":
		return ce.NewLM(ce.LMMLP, sch, seed)
	case "lm-gbt":
		return ce.NewLM(ce.LMGBT, sch, seed)
	case "lm-ply":
		return ce.NewLM(ce.LMPly, sch, seed)
	case "lm-rbf":
		return ce.NewLM(ce.LMRBF, sch, seed)
	case "mscn":
		return ce.NewMSCN(ce.NewCatalog(sch), seed)
	default:
		panic("experiments: unknown model " + name)
	}
}

// NewWarperAdapter builds an Adapter over a clone of the env's model (so
// methods compare from identical starting weights).
func (e *Env) NewWarperAdapter(sc Scale, seed int64) (*warper.Adapter, ce.Estimator) {
	cfg := sc.Warper
	cfg.Seed = seed
	cfg.Gamma = sc.gamma()
	m := e.Model.Clone()
	return mustAdapter(warper.New(cfg, m, e.Sch, e.Ann, e.Train)), m
}

// Methods builds the named adaptation methods over clones of the env model.
// Recognized names: FT, MIX, AUG, HEM, Warper, Warper:rnd, Warper:entropy,
// Warper:augGen.
func (e *Env) Methods(names []string, sc Scale, seed int64) []adapt.Method {
	var out []adapt.Method
	for i, name := range names {
		s := seed + int64(i)*1000
		switch name {
		case "FT":
			out = append(out, adapt.NewFT(e.Model.Clone(), e.Train))
		case "MIX":
			out = append(out, adapt.NewMIX(e.Model.Clone(), e.Train, s))
		case "AUG":
			out = append(out, adapt.NewAUG(e.Model.Clone(), e.Sch, e.Ann, e.Train, s))
		case "HEM":
			out = append(out, adapt.NewHEM(e.Model.Clone(), e.Sch, e.Ann, e.Train, s))
		case "Warper":
			ad, _ := e.NewWarperAdapter(sc, s)
			out = append(out, adapt.NewWarper(ad))
		case "Warper:rnd":
			ad, _ := e.NewWarperAdapter(sc, s)
			ad.Picker.Strategy = warper.StrategyRandom
			out = append(out, named{adapt.NewWarper(ad), "Warper:rnd"})
		case "Warper:entropy":
			ad, _ := e.NewWarperAdapter(sc, s)
			ad.Picker.Strategy = warper.StrategyEntropy
			out = append(out, named{adapt.NewWarper(ad), "Warper:entropy"})
		case "Warper:augGen":
			ad, _ := e.NewWarperAdapter(sc, s)
			ad.GenFunc = e.augGenFunc(s)
			out = append(out, named{adapt.NewWarper(ad), "Warper:augGen"})
		default:
			panic(fmt.Sprintf("experiments: unknown method %q", name))
		}
	}
	return out
}

// augGenFunc is the Table 10 "𝔾→AUG" ablation: replace the GAN generator
// with Gaussian noise (std 10% of each column range) around the newly
// arrived queries in the pool.
func (e *Env) augGenFunc(seed int64) func(p *pool.Pool, n int) []query.Predicate {
	rng := rand.New(rand.NewSource(seed))
	return func(p *pool.Pool, n int) []query.Predicate {
		newEntries := p.BySource(pool.SrcNew)
		if len(newEntries) == 0 || n <= 0 {
			return nil
		}
		out := make([]query.Predicate, 0, n)
		for i := 0; i < n; i++ {
			src := newEntries[rng.Intn(len(newEntries))].Pred.Clone()
			for c := range src.Lows {
				span := e.Sch.Maxs[c] - e.Sch.Mins[c]
				src.Lows[c] += rng.NormFloat64() * 0.1 * span
				src.Highs[c] += rng.NormFloat64() * 0.1 * span
			}
			out = append(out, src.Normalize(e.Sch))
		}
		return out
	}
}

// named overrides a method's display name.
type named struct {
	adapt.Method
	name string
}

func (n named) Name() string { return n.name }
