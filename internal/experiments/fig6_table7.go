package experiments

import "fmt"

// fig6Methods is the method lineup of Figure 6.
var fig6Methods = []string{"FT", "MIX", "AUG", "HEM", "Warper"}

// datasets evaluated throughout §4.1.
var datasets = []string{"prsa", "poker", "higgs"}

// Fig6 regenerates Figure 6: adaptation curves (GMQ vs consumed queries) for
// the five methods on the three datasets under workload drift c2
// (w12 → w345) with LM-mlp.
func Fig6(sc Scale, seed int64) []*Table {
	var out []*Table
	for _, ds := range datasets {
		res := RunC2(ds, "w12", "w345", "lm-mlp", append([]string(nil), fig6Methods...), sc, seed)
		out = append(out, res.CurveTable("Figure 6 ("+ds+")",
			fmt.Sprintf("GMQ vs new-workload queries, c2 w12/345, LM-mlp, %s (δm=%.1f δjs=%.2f)",
				ds, res.DeltaM, res.DeltaJS)))
	}
	return out
}

// Table7a regenerates Table 7a: Δ speedups for workload drift c2 with
// LM-mlp on the three datasets.
func Table7a(sc Scale, seed int64) []*Table {
	t := &Table{
		ID:     "Table 7a",
		Title:  "Workload drift (c2), w12/345, LM-mlp: Warper speedups vs FT",
		Header: []string{"Dataset", "Cs", "Wkld", "Model", "δm", "δjs", "Δ.5", "Δ.8", "Δ1"},
	}
	for _, ds := range datasets {
		res := RunC2(ds, "w12", "w345", "lm-mlp", []string{"FT", "Warper"}, sc, seed)
		d5, d8, d1 := res.Speedups("Warper")
		t.Rows = append(t.Rows, []string{
			ds, "c2", "w12/345", "LM-mlp", f1(res.DeltaM), f2(res.DeltaJS), f1(d5), f1(d8), f1(d1),
		})
	}
	return []*Table{t}
}

// table7bModels are the alternative CE models of Table 7b.
var table7bModels = []string{"lm-gbt", "lm-ply", "lm-rbf", "mscn"}

// Table7b regenerates Table 7b: Warper speedups for different CE models
// under the same c2 drift.
func Table7b(sc Scale, seed int64) []*Table {
	t := &Table{
		ID:     "Table 7b",
		Title:  "Different models, c2 w12/345: Warper speedups vs FT/RT",
		Header: []string{"Dataset", "Cs", "Wkld", "Model", "δm", "δjs", "Δ.5", "Δ.8", "Δ1"},
	}
	for _, model := range table7bModels {
		for _, ds := range datasets {
			res := RunC2(ds, "w12", "w345", model, []string{"FT", "Warper"}, sc, seed)
			d5, d8, d1 := res.Speedups("Warper")
			t.Rows = append(t.Rows, []string{
				ds, "c2", "w12/345", model, f1(res.DeltaM), f2(res.DeltaJS), f1(d5), f1(d8), f1(d1),
			})
		}
	}
	return []*Table{t}
}

// table8Pairs are the PRSA workload-change pairs of Table 8.
var table8Pairs = [][2]string{
	{"w1", "w2"}, {"w1", "w3"}, {"w1", "w4"},
	{"w2", "w3"}, {"w2", "w4"},
	{"w5", "w3"}, {"w5", "w4"},
	{"w34", "w125"}, {"w35", "w124"}, {"w125", "w34"},
}

// Table8 regenerates Table 8: Warper speedups across ten workload-change
// pairs on PRSA.
func Table8(sc Scale, seed int64) []*Table {
	t := &Table{
		ID:     "Table 8",
		Title:  "Different workload changes on PRSA (c2, LM-mlp)",
		Header: []string{"Wkld", "δm", "δjs", "Δ.5", "Δ.8", "Δ1"},
	}
	for _, pair := range table8Pairs {
		res := RunC2("prsa", pair[0], pair[1], "lm-mlp", []string{"FT", "Warper"}, sc, seed)
		d5, d8, d1 := res.Speedups("Warper")
		t.Rows = append(t.Rows, []string{
			pair[0] + "/" + pair[1], f1(res.DeltaM), f2(res.DeltaJS), f1(d5), f1(d8), f1(d1),
		})
	}
	return []*Table{t}
}

// fig8Pairs are the adaptation-curve pairs shown in Figure 8.
var fig8Pairs = []struct {
	ds   string
	pair [2]string
}{
	{"prsa", [2]string{"w1", "w3"}},
	{"prsa", [2]string{"w2", "w4"}},
	{"prsa", [2]string{"w5", "w3"}},
	{"poker", [2]string{"w1", "w3"}},
	{"poker", [2]string{"w2", "w4"}},
	{"poker", [2]string{"w125", "w34"}},
}

// Fig8 regenerates Figure 8: adaptation curves for assorted workload pairs.
func Fig8(sc Scale, seed int64) []*Table {
	var out []*Table
	for _, c := range fig8Pairs {
		res := RunC2(c.ds, c.pair[0], c.pair[1], "lm-mlp", append([]string(nil), fig6Methods...), sc, seed)
		out = append(out, res.CurveTable(
			fmt.Sprintf("Figure 8 (%s %s→%s)", c.ds, c.pair[0], c.pair[1]),
			fmt.Sprintf("GMQ vs queries, LM-mlp (δm=%.1f δjs=%.2f)", res.DeltaM, res.DeltaJS)))
	}
	return out
}

// Table10 regenerates Table 10: ablations replacing the picker ℙ (random,
// entropy) and the generator 𝔾 (AUG noise).
func Table10(sc Scale, seed int64) []*Table {
	methods := []string{"FT", "Warper", "Warper:rnd", "Warper:entropy", "Warper:augGen"}
	t := &Table{
		ID:     "Table 10",
		Title:  "Ablations: replacing learned Warper components (c2, w12/345, LM-mlp)",
		Header: []string{"Metric", "Dataset", "Warper", "P->rnd", "P->entropy", "G->AUG"},
	}
	for _, ds := range []string{"prsa", "poker"} {
		res := RunC2(ds, "w12", "w345", "lm-mlp", append([]string(nil), methods...), sc, seed)
		_, d8w, d1w := res.Speedups("Warper")
		_, d8r, d1r := res.Speedups("Warper:rnd")
		_, d8e, d1e := res.Speedups("Warper:entropy")
		_, d8a, d1a := res.Speedups("Warper:augGen")
		t.Rows = append(t.Rows,
			[]string{"Δ.8", ds, f1(d8w), f1(d8r), f1(d8e), f1(d8a)},
			[]string{"Δ1", ds, f1(d1w), f1(d1r), f1(d1e), f1(d1a)},
		)
	}
	return []*Table{t}
}

// fig10Configs are the 𝔼/𝔾 structure variants of Figure 10.
var fig10Configs = []struct {
	hidden, depth int
}{
	{32, 2}, {64, 2}, {128, 2}, {64, 1}, {64, 3}, {128, 3},
}

// Fig10 regenerates Figure 10: sensitivity of the adaptation speedup to the
// 𝔼/𝔾 network width and depth.
func Fig10(sc Scale, seed int64) []*Table {
	t := &Table{
		ID:     "Figure 10",
		Title:  "NN hyperparameters in E and G (PRSA, c2 w12/345, LM-mlp)",
		Header: []string{"Hidden", "Depth", "Δ.5", "Δ.8", "Δ1"},
	}
	for _, cfg := range fig10Configs {
		s := sc
		s.Warper.Hidden = cfg.hidden
		s.Warper.Depth = cfg.depth
		res := RunC2("prsa", "w12", "w345", "lm-mlp", []string{"FT", "Warper"}, s, seed)
		d5, d8, d1 := res.Speedups("Warper")
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(cfg.hidden), fmt.Sprint(cfg.depth), f1(d5), f1(d8), f1(d1),
		})
	}
	return []*Table{t}
}

// fig11Fractions are the generated-query budgets of Figure 11 / Table 11,
// as multiples of n_t.
var fig11Fractions = []float64{0.1, 0.3, 1.0, 3.0}

// Fig11 regenerates Figure 11: adaptation speedup as the number of
// generated queries n_g varies.
func Fig11(sc Scale, seed int64) []*Table {
	t := &Table{
		ID:     "Figure 11",
		Title:  "Trading compute for speedup: varying n_g (c2, w12/345, LM-mlp)",
		Header: []string{"Dataset", "n_g", "Δ.5", "Δ.8", "Δ1", "extra annotations"},
	}
	for _, ds := range []string{"prsa", "poker"} {
		for _, frac := range fig11Fractions {
			s := sc
			s.Warper.GenFraction = frac
			res := RunC2(ds, "w12", "w345", "lm-mlp", []string{"FT", "Warper"}, s, seed)
			d5, d8, d1 := res.Speedups("Warper")
			t.Rows = append(t.Rows, []string{
				ds, fmt.Sprintf("%.1fx", frac), f1(d5), f1(d8), f1(d1),
				f1(res.Annotations["Warper"]),
			})
		}
	}
	return []*Table{t}
}
