package experiments

import (
	"sort"

	"warper/internal/adapt"
	"warper/internal/metrics"
	"warper/internal/obs"
)

// C2Result aggregates one c2 comparison: multiple adaptation methods run on
// identical arrivals, curves averaged over Scale.Runs repetitions.
type C2Result struct {
	Dataset   string
	TrainSpec string
	NewSpec   string
	Model     string
	DeltaM    float64
	DeltaJS   float64
	// MethodOrder preserves the requested method ordering.
	MethodOrder []string
	// Curves maps method name to its averaged adaptation curve.
	Curves map[string]*metrics.Curve
	// Annotations maps method name to mean extra annotations spent.
	Annotations map[string]float64
	// QErrors maps method name to the log-scale q-error histogram
	// accumulated over every evaluation of every run — the same histogram
	// shape the serving stack exports on /metrics, so tail behavior
	// (p95/p99) is reported consistently on- and offline.
	QErrors map[string]*obs.Histogram
}

// Speedups returns (Δ.5, Δ.8, Δ1) of a method relative to the FT curve.
func (r *C2Result) Speedups(method string) (d50, d80, d100 float64) {
	ft, ok := r.Curves["FT"]
	if !ok {
		ft = r.Curves["RT"]
	}
	return metrics.SpeedupTriple(ft, r.Curves[method])
}

// RunC2 runs the standard c2 experiment: the model drifts from trainSpec to
// newSpec; every method consumes the same labeled arrivals period by period.
func RunC2(dsName, trainSpec, newSpec, model string, methodNames []string, sc Scale, seed int64) *C2Result {
	res := &C2Result{
		Dataset: dsName, TrainSpec: trainSpec, NewSpec: newSpec, Model: model,
		MethodOrder: methodNames,
		Curves:      map[string]*metrics.Curve{},
		Annotations: map[string]float64{},
		QErrors:     map[string]*obs.Histogram{},
	}
	type agg struct {
		points [][]float64 // per curve point, the GMQ of every run
		xs     []float64
		annSum float64
	}
	aggs := map[string]*agg{}
	for run := 0; run < sc.Runs; run++ {
		runSeed := seed + int64(run)*7919
		env := NewEnv(dsName, trainSpec, newSpec, model, sc, runSeed)
		res.DeltaM += env.DeltaM / float64(sc.Runs)
		res.DeltaJS += env.DeltaJS / float64(sc.Runs)
		periods := adapt.SplitPeriods(adapt.ArrivalsOf(env.Stream, true), sc.PeriodSize)
		runner := &adapt.Runner{Test: env.Test}
		for _, m := range env.Methods(methodNames, sc, runSeed+17) {
			if res.QErrors[m.Name()] == nil {
				res.QErrors[m.Name()] = obs.NewHistogram(obs.QErrorOpts())
			}
			runner.QErrHist = res.QErrors[m.Name()]
			curve := mustCurve(runner.Run(m, periods))
			a := aggs[m.Name()]
			if a == nil {
				a = &agg{points: make([][]float64, curve.Len()), xs: curve.Queries}
				aggs[m.Name()] = a
			}
			for i, g := range curve.GMQ {
				a.points[i] = append(a.points[i], g)
			}
			a.annSum += float64(m.AnnotationsSpent())
		}
	}
	// Aggregate runs with the pointwise median: robust to a single
	// divergent run dominating the mean.
	for name, a := range aggs {
		c := &metrics.Curve{}
		for i := range a.points {
			c.Append(a.xs[i], median(a.points[i]))
		}
		// A temporal median filter keeps single-point noise dips from
		// winning λ-target crossings.
		res.Curves[name] = c.MedianSmooth(3)
		res.Annotations[name] = a.annSum / float64(sc.Runs)
	}
	// Normalize method names (FT may have reported as RT for re-train
	// models).
	if _, ok := res.Curves["FT"]; !ok {
		if _, ok := res.Curves["RT"]; ok {
			for i, n := range res.MethodOrder {
				if n == "FT" {
					res.MethodOrder[i] = "RT"
				}
			}
		}
	}
	return res
}

// CurveTable renders the averaged curves of a C2Result as one table: a row
// per evaluation point, a column per method (the Figure 6 / Figure 8 series).
func (r *C2Result) CurveTable(id, title string) *Table {
	t := &Table{ID: id, Title: title}
	t.Header = append([]string{"#queries"}, r.MethodOrder...)
	// All curves share the same x grid.
	ref := r.Curves[r.MethodOrder[0]]
	for i := 0; i < ref.Len(); i++ {
		row := []string{f1(ref.Queries[i])}
		for _, name := range r.MethodOrder {
			row = append(row, f2(r.Curves[name].GMQ[i]))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// median returns the middle value (mean of the two middles for even counts).
func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	mid := len(s) / 2
	if len(s)%2 == 1 {
		return s[mid]
	}
	return (s[mid-1] + s[mid]) / 2
}

// sortedMethodNames returns method names in a stable order for map output.
func sortedMethodNames(m map[string]*metrics.Curve) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
