package experiments

import (
	"strings"
	"testing"
)

// smokeScale is even smaller than QuickScale so every experiment's full code
// path runs in seconds inside the unit-test suite.
func smokeScale() Scale {
	s := QuickScale()
	s.TrainSize = 150
	s.StreamSize = 60
	s.PeriodSize = 20
	s.TestSize = 50
	s.Rows = 1000
	s.Warper.NIters = 15
	s.Warper.PickSize = 80
	return s
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"fig1", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
		"table6", "table7a", "table7b", "table7c", "table7d", "table8",
		"table9", "table10", "table11", "ext-histogram",
	}
	names := Names()
	got := map[string]bool{}
	for _, n := range names {
		got[n] = true
	}
	for _, w := range want {
		if !got[w] {
			t.Errorf("experiment %q missing from registry", w)
		}
	}
	if _, err := Lookup("nope"); err == nil {
		t.Error("Lookup(nope) should fail")
	}
}

func TestTableRendering(t *testing.T) {
	tbl := &Table{
		ID:     "T",
		Title:  "demo",
		Header: []string{"a", "bb"},
		Rows:   [][]string{{"1", "2"}, {"333", "4"}},
	}
	s := tbl.String()
	if !strings.Contains(s, "== T: demo ==") || !strings.Contains(s, "333") {
		t.Errorf("rendering wrong:\n%s", s)
	}
}

func TestRunC2ProducesConsistentCurves(t *testing.T) {
	if testing.Short() {
		t.Skip("training-heavy; skipped under -short (race pass)")
	}
	sc := smokeScale()
	res := RunC2("prsa", "w1", "w4", "lm-mlp", []string{"FT", "Warper"}, sc, 5)
	if len(res.Curves) != 2 {
		t.Fatalf("curves = %d", len(res.Curves))
	}
	ft := res.Curves["FT"]
	w := res.Curves["Warper"]
	if ft.Len() != w.Len() || ft.Len() != sc.StreamSize/sc.PeriodSize+1 {
		t.Errorf("curve lengths: ft=%d warper=%d", ft.Len(), w.Len())
	}
	// Both start from the same unadapted model error.
	if ft.Initial() != w.Initial() {
		t.Errorf("methods start from different errors: %v vs %v", ft.Initial(), w.Initial())
	}
	d5, d8, d1 := res.Speedups("Warper")
	for _, d := range []float64{d5, d8, d1} {
		if d < 0 {
			t.Errorf("negative speedup %v", d)
		}
	}
}

func TestEnvDriftMetricsPopulated(t *testing.T) {
	if testing.Short() {
		t.Skip("training-heavy; skipped under -short (race pass)")
	}
	env := NewEnv("poker", "w12", "w345", "lm-mlp", smokeScale(), 3)
	if env.DeltaJS <= 0 {
		t.Errorf("δ_js = %v, want > 0 for drifted workloads", env.DeltaJS)
	}
	if len(env.Train) == 0 || len(env.Stream) == 0 || len(env.Test) == 0 {
		t.Error("empty query sets")
	}
}

func TestEnvUnknownInputsPanic(t *testing.T) {
	for _, f := range []func(){
		func() { NewEnv("nope", "w1", "w2", "lm-mlp", smokeScale(), 1) },
		func() { NewModel("nope", nil, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

// Smoke tests: every registered experiment runs end to end at tiny scale and
// emits non-empty tables.
func TestAllExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("training-heavy; skipped under -short (race pass)")
	}
	if testing.Short() {
		t.Skip("long smoke test")
	}
	sc := smokeScale()
	for _, id := range Names() {
		id := id
		t.Run(id, func(t *testing.T) {
			run, err := Lookup(id)
			if err != nil {
				t.Fatal(err)
			}
			tables := run(sc, 9)
			if len(tables) == 0 {
				t.Fatal("no tables")
			}
			for _, tbl := range tables {
				if len(tbl.Header) == 0 || len(tbl.Rows) == 0 {
					t.Errorf("table %s is empty", tbl.ID)
				}
				for _, row := range tbl.Rows {
					if len(row) != len(tbl.Header) {
						t.Errorf("table %s: row width %d vs header %d", tbl.ID, len(row), len(tbl.Header))
					}
				}
			}
		})
	}
}
