package experiments

import (
	"math/rand"

	"warper/internal/annotator"
	"warper/internal/ce"
	"warper/internal/dataset"
	"warper/internal/query"
	"warper/internal/workload"
)

// ExtHistogram is an extension experiment beyond the paper's tables: it
// makes §2's contrast between workload-driven and data-driven estimators
// measurable. A classical equi-depth histogram (data-driven) is immune to
// workload drifts but blind to data drifts until rebuilt; the LM model
// (workload-driven) is the reverse. Warper exists precisely because the
// workload-driven family has an adaptation path worth accelerating.
func ExtHistogram(sc Scale, seed int64) []*Table {
	t := &Table{
		ID:     "Ext: histogram-vs-LM",
		Title:  "Workload-driven (LM-mlp) vs data-driven (equi-depth histogram) under drifts (PRSA)",
		Header: []string{"Condition", "LM-mlp GMQ", "Histogram GMQ"},
	}
	rng := rand.New(rand.NewSource(seed))
	rows := sc.Rows
	if rows == 0 {
		rows = 6000
	}
	tbl := dataset.PRSA(rows, rng)
	sch := query.SchemaOf(tbl)
	ann := annotator.New(tbl)
	opts := workload.Options{MinConstrained: 1, MaxConstrained: 2}
	gTrain := workload.Parse("w12", tbl, sch, opts)
	gNew := workload.Parse("w345", tbl, sch, opts)

	train := mustAnnotateAll(ann, workload.Generate(gTrain, sc.TrainSize, rng))
	lm := ce.NewLM(ce.LMMLP, sch, seed+1)
	mustTrain(lm, train)
	hist := ce.NewHistogramEstimator(tbl, 64)

	evalOn := func(g workload.Generator) (float64, float64) {
		test := mustAnnotateAll(ann, workload.Generate(g, sc.TestSize, rng))
		return ce.EvalGMQ(lm, test), ce.EvalGMQ(hist, test)
	}

	lmIn, hIn := evalOn(gTrain)
	t.Rows = append(t.Rows, []string{"in-distribution (w12)", f2(lmIn), f2(hIn)})

	lmWk, hWk := evalOn(gNew)
	t.Rows = append(t.Rows, []string{"workload drift (w345)", f2(lmWk), f2(hWk)})

	// Data drift: both estimators go stale; the histogram can rebuild from
	// the data alone, the LM needs re-labeled queries.
	dataset.SortTruncateHalf(tbl, 0)
	lmDd, hDd := evalOn(gTrain)
	t.Rows = append(t.Rows, []string{"data drift, no adaptation", f2(lmDd), f2(hDd)})

	mustUpdate(hist, nil) // rebuild from the mutated table — free for histograms
	_, hReb := evalOn(gTrain)
	relabeled := mustAnnotateAll(ann, workload.Generate(gTrain, sc.StreamSize, rng))
	mustUpdate(lm, relabeled) // the LM needs fresh labels to recover
	lmReb, _ := evalOn(gTrain)
	t.Rows = append(t.Rows, []string{"data drift, after adaptation", f2(lmReb), f2(hReb)})

	return []*Table{t}
}
