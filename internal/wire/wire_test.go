package wire

import (
	"bytes"
	"encoding/binary"
	"io"
	"math"
	"strings"
	"testing"

	"warper/internal/query"
)

func testPreds(rows, cols int) []query.Predicate {
	ps := make([]query.Predicate, rows)
	for i := range ps {
		lows := make([]float64, cols)
		highs := make([]float64, cols)
		for j := range lows {
			lows[j] = float64(i*cols + j)
			highs[j] = float64(i*cols+j) + 0.5
		}
		ps[i] = query.Predicate{Lows: lows, Highs: highs}
	}
	return ps
}

func TestRequestRoundTrip(t *testing.T) {
	for _, tc := range []struct{ rows, cols int }{{1, 1}, {3, 4}, {64, 18}, {0, 5}} {
		preds := testPreds(tc.rows, tc.cols)
		frame, err := AppendRequest(nil, 7, preds, false)
		if err != nil {
			t.Fatalf("AppendRequest(%d,%d): %v", tc.rows, tc.cols, err)
		}
		wantLen := HeaderSize + 16*tc.rows*tc.cols
		if len(frame) != wantLen {
			t.Fatalf("frame len = %d, want %d", len(frame), wantLen)
		}
		b := NewBuffer()
		b.In = append(b.In[:0], frame...)
		if err := b.DecodeBatch(tc.cols, 8192); err != nil {
			t.Fatalf("DecodeBatch(%d,%d): %v", tc.rows, tc.cols, err)
		}
		wantCols := tc.cols
		if tc.rows == 0 {
			wantCols = 0 // canonical empty batch carries zero cols
		}
		if b.Req.Generation != 7 || b.Req.Rows != tc.rows || b.Req.Cols != wantCols {
			t.Fatalf("header = %+v", b.Req)
		}
		if len(b.Req.Preds) != tc.rows {
			t.Fatalf("decoded %d preds, want %d", len(b.Req.Preds), tc.rows)
		}
		for i, p := range b.Req.Preds {
			for j := 0; j < tc.cols; j++ {
				if p.Lows[j] != preds[i].Lows[j] || p.Highs[j] != preds[i].Highs[j] {
					t.Fatalf("pred %d col %d = [%v,%v], want [%v,%v]",
						i, j, p.Lows[j], p.Highs[j], preds[i].Lows[j], preds[i].Highs[j])
				}
			}
		}
	}
}

func TestResponseRoundTrip(t *testing.T) {
	cards := []float64{1.5, 0, 1e12, 42}
	b := NewBuffer()
	b.EncodeResponse(9, FlagDegraded, cards, false)
	h, got, err := DecodeResponse(b.Out, nil)
	if err != nil {
		t.Fatalf("DecodeResponse: %v", err)
	}
	if h.Generation != 9 || !h.Degraded() || h.Err() || h.Rows != len(cards) {
		t.Fatalf("header = %+v", h)
	}
	for i := range cards {
		if got[i] != cards[i] {
			t.Fatalf("card %d = %v, want %v", i, got[i], cards[i])
		}
	}
	// Framed form: the prefix must carry the unframed length.
	b2 := NewBuffer()
	b2.EncodeResponse(9, 0, cards, true)
	if n := binary.LittleEndian.Uint32(b2.Out); int(n) != len(b2.Out)-LenPrefixSize {
		t.Fatalf("frame prefix = %d, body = %d", n, len(b2.Out)-LenPrefixSize)
	}
	if _, _, err := DecodeResponse(b2.Out[LenPrefixSize:], nil); err != nil {
		t.Fatalf("framed DecodeResponse: %v", err)
	}
}

// TestEncodeReclaimsRequestStorage pins the buffer-pool lifecycle: the
// response is encoded over the request's backing array, so a pooled buffer
// settles at one allocation ever.
func TestEncodeReclaimsRequestStorage(t *testing.T) {
	preds := testPreds(16, 6)
	frame, _ := AppendRequest(nil, 0, preds, false)
	b := NewBuffer()
	b.In = append(b.In[:0], frame...)
	if err := b.DecodeBatch(6, 8192); err != nil {
		t.Fatal(err)
	}
	before := cap(b.In)
	b.EncodeResponse(1, 0, make([]float64, 16), false)
	if cap(b.In) != before {
		t.Fatalf("encode grew the buffer: cap %d → %d", before, cap(b.In))
	}
	if &b.Out[0] != &b.In[:1][0] {
		t.Fatal("response does not reuse the request's backing array")
	}
}

func TestDecodeErrors(t *testing.T) {
	valid := func() []byte {
		f, _ := AppendRequest(nil, 3, testPreds(2, 3), false)
		return f
	}
	cases := []struct {
		name string
		mut  func([]byte) []byte
		cols int
		max  int
		want error
	}{
		{"short header", func(f []byte) []byte { return f[:10] }, 3, 8, ErrShortFrame},
		{"empty", func(f []byte) []byte { return nil }, 3, 8, ErrShortFrame},
		{"bad magic", func(f []byte) []byte { f[0] ^= 0xff; return f }, 3, 8, ErrMagic},
		{"bad version", func(f []byte) []byte { f[4] = 99; return f }, 3, 8, ErrVersion},
		{"reserved flags", func(f []byte) []byte { f[6] = 1; return f }, 3, 8, ErrFlags},
		{"rows over cap", func(f []byte) []byte { return f }, 3, 1, ErrRows},
		{"cols mismatch", func(f []byte) []byte { return f }, 4, 8, ErrCols},
		{"short payload", func(f []byte) []byte { return f[:len(f)-8] }, 3, 8, ErrShortFrame},
		{"trailing bytes", func(f []byte) []byte { return append(f, 0) }, 3, 8, ErrTrailingData},
		{"nan low", func(f []byte) []byte {
			binary.LittleEndian.PutUint64(f[HeaderSize:], math.Float64bits(math.NaN()))
			return f
		}, 3, 8, ErrNonFinite},
		{"inf high", func(f []byte) []byte {
			binary.LittleEndian.PutUint64(f[len(f)-8:], math.Float64bits(math.Inf(1)))
			return f
		}, 3, 8, ErrNonFinite},
		{"forged row count", func(f []byte) []byte {
			binary.LittleEndian.PutUint32(f[16:], 1<<31)
			return f
		}, 3, 8, ErrRows},
	}
	for _, tc := range cases {
		b := NewBuffer()
		b.In = append(b.In[:0], tc.mut(valid())...)
		if err := b.DecodeBatch(tc.cols, tc.max); err != tc.want {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
}

func TestCheckFinite(t *testing.T) {
	if err := CheckFinite([]float64{0, -1e300, 1e300, math.MaxFloat64}); err != nil {
		t.Fatalf("finite values rejected: %v", err)
	}
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if err := CheckFinite([]float64{1, bad}); err != ErrNonFinite {
			t.Errorf("CheckFinite(%v) = %v, want ErrNonFinite", bad, err)
		}
	}
}

func TestReadFrameStream(t *testing.T) {
	var stream []byte
	stream, _ = AppendRequest(stream, 1, testPreds(2, 2), true)
	stream, _ = AppendRequest(stream, 2, testPreds(1, 2), true)
	r := bytes.NewReader(stream)
	b := NewBuffer()
	var gens []uint64
	for {
		err := b.ReadFrame(r, 1<<16)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("ReadFrame: %v", err)
		}
		if err := b.DecodeBatch(2, 8); err != nil {
			t.Fatalf("DecodeBatch: %v", err)
		}
		gens = append(gens, b.Req.Generation)
	}
	if len(gens) != 2 || gens[0] != 1 || gens[1] != 2 {
		t.Fatalf("gens = %v, want [1 2]", gens)
	}

	// A truncated body is ErrShortFrame, not a silent EOF.
	if err := NewBuffer().ReadFrame(bytes.NewReader(stream[:10]), 1<<16); err != ErrShortFrame {
		t.Fatalf("truncated body: err = %v, want ErrShortFrame", err)
	}
	// A truncated prefix too.
	if err := NewBuffer().ReadFrame(bytes.NewReader(stream[:2]), 1<<16); err != ErrShortFrame {
		t.Fatalf("truncated prefix: err = %v, want ErrShortFrame", err)
	}
	// A frame beyond the cap is refused before its body is read.
	if err := NewBuffer().ReadFrame(bytes.NewReader(stream), 8); err != ErrFrameTooLarge {
		t.Fatalf("oversize frame: err = %v, want ErrFrameTooLarge", err)
	}
}

func TestReadAllReusesCapacity(t *testing.T) {
	b := NewBuffer()
	if err := b.ReadAll(strings.NewReader("hello")); err != nil {
		t.Fatal(err)
	}
	if string(b.In) != "hello" {
		t.Fatalf("In = %q", b.In)
	}
	before := cap(b.In)
	if err := b.ReadAll(strings.NewReader("ok")); err != nil {
		t.Fatal(err)
	}
	if string(b.In) != "ok" || cap(b.In) != before {
		t.Fatalf("reuse failed: In=%q cap %d → %d", b.In, before, cap(b.In))
	}
}

// TestDecodeSteadyAllocs pins the zero-copy contract at the codec layer:
// once a buffer has seen its batch shape, decode + encode allocate nothing.
func TestDecodeSteadyAllocs(t *testing.T) {
	preds := testPreds(64, 6)
	frame, _ := AppendRequest(nil, 0, preds, false)
	cards := make([]float64, 64)
	b := NewBuffer()
	// Warm: reach the high-water capacity once.
	b.In = append(b.In[:0], frame...)
	if err := b.DecodeBatch(6, 8192); err != nil {
		t.Fatal(err)
	}
	b.EncodeResponse(1, 0, cards, false)
	allocs := testing.AllocsPerRun(100, func() {
		b.In = append(b.In[:0], frame...)
		if err := b.DecodeBatch(6, 8192); err != nil {
			t.Fatal(err)
		}
		b.EncodeResponse(1, 0, cards, false)
	})
	if allocs != 0 {
		t.Fatalf("steady decode/encode allocates %v times per run, want 0", allocs)
	}
}

func TestDecodeResponseErrors(t *testing.T) {
	b := NewBuffer()
	b.EncodeResponse(1, 0, []float64{1, 2}, false)
	if _, _, err := DecodeResponse(b.Out[:10], nil); err != ErrShortFrame {
		t.Errorf("short: %v", err)
	}
	long := append(append([]byte{}, b.Out...), 0)
	if _, _, err := DecodeResponse(long, nil); err != ErrTrailingData {
		t.Errorf("trailing: %v", err)
	}
	bad := append([]byte{}, b.Out...)
	bad[0] ^= 0xff
	if _, _, err := DecodeResponse(bad, nil); err != ErrMagic {
		t.Errorf("magic: %v", err)
	}
}
