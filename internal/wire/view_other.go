//go:build !(386 || amd64 || amd64p32 || arm || arm64 || loong64 || mips64le || mipsle || ppc64le || riscv64 || wasm)

// Big-endian hosts cannot view the little-endian wire blocks in place;
// every float goes through an explicit byte-order decode into the
// buffer's pooled slab instead.

package wire

func floatView(b []byte) ([]float64, bool) {
	if len(b) == 0 {
		return nil, true
	}
	return nil, false
}
