//go:build 386 || amd64 || amd64p32 || arm || arm64 || loong64 || mips64le || mipsle || ppc64le || riscv64 || wasm

// Little-endian hosts: the frame's float64 blocks already hold the
// in-memory representation, so the decoder can view them in place and
// skip the copy entirely — this is what makes the binary path zero-copy.

package wire

import "unsafe"

// floatView reinterprets b as a []float64 without copying. It fails (and
// the caller falls back to a decoding copy) only when b's length is not a
// multiple of 8 or its base pointer is not 8-byte aligned — heap-allocated
// byte slices are pointer-aligned, and every offset this package views at
// (HeaderSize, the highs block, a framed response body) is a multiple of 8.
func floatView(b []byte) ([]float64, bool) {
	if len(b)%8 != 0 {
		return nil, false
	}
	n := len(b) / 8
	if n == 0 {
		return nil, true
	}
	p := unsafe.Pointer(unsafe.SliceData(b))
	if uintptr(p)%8 != 0 {
		return nil, false
	}
	return unsafe.Slice((*float64)(p), n), true
}
