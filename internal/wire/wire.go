// Package wire implements the columnar binary batch protocol behind
// POST /estimate/batch (and its length-prefixed streaming variant): a
// fixed little-endian header followed by two float64 column blocks, lows
// then highs, each predicate-major so one predicate's bounds are a
// contiguous sub-slice of the frame. On little-endian hosts the decoder
// views those blocks in place — decoded predicates alias the request
// bytes and the whole decode allocates nothing on the steady path.
//
// Request frame (all fields little-endian):
//
//	[ 0: 4)  magic      uint32  "WRPB"
//	[ 4: 6)  version    uint16  1
//	[ 6: 8)  flags      uint16  must be zero (reserved)
//	[ 8:16)  generation uint64  client's last-seen serving generation (0 = unknown)
//	[16:20)  rows       uint32  predicates in the batch
//	[20:24)  cols       uint32  schema columns per predicate
//	[24:24+8·rows·cols)           lows block  (row i at [i·cols, (i+1)·cols))
//	[24+8·rows·cols:24+16·rows·cols) highs block, same layout
//
// A frame must end exactly where its header says: shorter is
// ErrShortFrame, longer is ErrTrailingData — the same contract the JSON
// handlers enforce with a second Decode. Every bound must be finite;
// NaN/±Inf frames are rejected with ErrNonFinite before any bound can
// reach a feature vector or a cache key.
//
// Response frame:
//
//	[ 0: 4)  magic      uint32
//	[ 4: 6)  version    uint16
//	[ 6: 8)  flags      uint16  FlagDegraded / FlagError / FlagShed
//	[ 8:16)  generation uint64  serving generation that computed the answers (0 = none)
//	[16:20)  rows       uint32
//	[20:24)  reserved   uint32  zero
//	[24:24+8·rows)               cardinalities, float64 LE
//
// The streaming variant prefixes every frame (both directions) with a
// uint32 little-endian byte length.
//
// Versioning rules: the magic and the header layout above are frozen; a
// layout change bumps Version and old servers answer ErrVersion, never a
// misparse. Reserved flag bits and the reserved response word must be
// zero on the wire so future versions can assign them.
package wire

import (
	"encoding/binary"
	"errors"
	"io"
	"math"

	"warper/internal/query"
)

// Frame layout constants.
const (
	// Magic spells "WRPB" when the uint32 is laid down little-endian.
	Magic = 0x42505257
	// Version is the only frame layout this package speaks.
	Version = 1
	// HeaderSize is the fixed byte size of both header forms.
	HeaderSize = 24
	// LenPrefixSize is the byte size of the streaming length prefix.
	LenPrefixSize = 4
)

// Response flag bits.
const (
	// FlagDegraded marks a response with at least one fallback-ladder
	// answer (the binary analogue of the JSON "degraded" field).
	FlagDegraded uint16 = 1 << 0
	// FlagError marks a zero-row error response on the streaming
	// endpoint, where no HTTP status can follow the first frame.
	FlagError uint16 = 1 << 1
	// FlagShed marks an error response caused by admission control.
	FlagShed uint16 = 1 << 2
)

// Decode failures. Sentinels, never wrapped: the serving path maps them
// to HTTP 400 by identity and must not allocate to do so.
var (
	ErrShortFrame    = errors.New("wire: frame shorter than its header demands")
	ErrMagic         = errors.New("wire: bad magic")
	ErrVersion       = errors.New("wire: unsupported protocol version")
	ErrFlags         = errors.New("wire: reserved request flag bits set")
	ErrRows          = errors.New("wire: row count exceeds the batch cap")
	ErrCols          = errors.New("wire: column count does not match the schema")
	ErrFrameTooLarge = errors.New("wire: stream frame exceeds the frame cap")
	// ErrTrailingData is shared with the JSON handlers' strict decode:
	// both protocols reject bodies that continue past their one payload.
	ErrTrailingData = errors.New("request carries trailing bytes after its payload")
	// ErrNonFinite is shared with the JSON predicate decoder: a NaN or
	// ±Inf bound would poison feature vectors and cache keys silently.
	ErrNonFinite = errors.New("predicate bound is NaN or infinite")
)

// Request is one decoded batch. Preds alias the frame bytes (or the
// buffer's decode slab on big-endian hosts) and are valid only until the
// next Decode/Encode call on the owning Buffer.
type Request struct {
	// Generation is the client's last-seen serving generation echo.
	Generation uint64
	Rows, Cols int
	Preds      []query.Predicate
}

// Buffer is one pooled request/response unit: the raw frame bytes, the
// decoded batch view, and the response encoded over the reclaimed request
// storage. A Buffer is single-owner between checkout and release; none of
// its methods are safe for concurrent use.
type Buffer struct {
	// In holds the request frame. ReadAll/ReadFrame fill it reusing its
	// capacity; EncodeResponse reclaims the same backing array.
	In []byte
	// Out is the encoded response frame, aliasing In's storage.
	Out []byte
	// Req is the result of the last successful DecodeBatch.
	Req Request

	preds  []query.Predicate
	floats []float64 // decode slab for hosts that cannot view In in place
	lp     [LenPrefixSize]byte
}

// bufferInitialCap sizes a fresh Buffer's frame storage: 64 KiB holds a
// 227-row batch over an 18-column schema without growing.
const bufferInitialCap = 64 << 10

// NewBuffer builds a Buffer with pre-sized frame storage.
//
//lint:allow hotpathalloc constructing a pooled buffer allocates once; the serving free list recycles it forever after
func NewBuffer() *Buffer {
	return &Buffer{In: make([]byte, 0, bufferInitialCap)}
}

// ReadAll reads r to EOF into b.In, reusing its capacity. The caller
// bounds r (http.MaxBytesReader); growth is capacity-doubling and sticks
// with the buffer for its pooled lifetime.
func (b *Buffer) ReadAll(r io.Reader) error {
	b.In = b.In[:0]
	for {
		if len(b.In) == cap(b.In) {
			//lint:allow hotpathalloc grow-once frame storage: a pooled buffer keeps its high-water capacity
			b.In = append(b.In, 0)[:len(b.In)]
		}
		n, err := r.Read(b.In[len(b.In):cap(b.In)])
		b.In = b.In[:len(b.In)+n]
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
	}
}

// ReadFrame reads one length-prefixed frame from a stream into b.In. A
// clean end of stream (EOF before any prefix byte) returns io.EOF; a
// truncated prefix or body returns ErrShortFrame; a prefix beyond
// maxFrame returns ErrFrameTooLarge without consuming the body.
func (b *Buffer) ReadFrame(r io.Reader, maxFrame int) error {
	if _, err := io.ReadFull(r, b.lp[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return ErrShortFrame
		}
		return err // io.EOF: the stream ended between frames
	}
	n := int(binary.LittleEndian.Uint32(b.lp[:]))
	if n > maxFrame {
		return ErrFrameTooLarge
	}
	if cap(b.In) < n {
		//lint:allow hotpathalloc grow-once frame storage, bounded by the caller's frame cap
		b.In = make([]byte, 0, n)
	}
	b.In = b.In[:n]
	if _, err := io.ReadFull(r, b.In); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return ErrShortFrame
		}
		return err
	}
	return nil
}

// DecodeBatch parses b.In into b.Req. wantCols is the serving schema's
// column count; maxRows caps the batch so a forged row count cannot force
// a huge inference. The frame must be exactly header + 16·rows·cols bytes
// and every bound must be finite. On little-endian hosts the decoded
// predicates view the frame bytes in place; nothing allocates once the
// buffer's slices have reached their high-water capacity.
func (b *Buffer) DecodeBatch(wantCols, maxRows int) error {
	in := b.In
	if len(in) < HeaderSize {
		return ErrShortFrame
	}
	if binary.LittleEndian.Uint32(in[0:]) != Magic {
		return ErrMagic
	}
	if binary.LittleEndian.Uint16(in[4:]) != Version {
		return ErrVersion
	}
	if binary.LittleEndian.Uint16(in[6:]) != 0 {
		return ErrFlags
	}
	gen := binary.LittleEndian.Uint64(in[8:])
	rows64 := uint64(binary.LittleEndian.Uint32(in[16:]))
	cols64 := uint64(binary.LittleEndian.Uint32(in[20:]))
	// Canonical empty batch: zero rows carry zero cols (an empty batch
	// cannot state a width — AppendRequest encodes it that way too).
	if wantCols < 0 || cols64 != uint64(wantCols) {
		if !(rows64 == 0 && cols64 == 0) {
			return ErrCols
		}
	}
	if maxRows < 0 || rows64 > uint64(maxRows) {
		return ErrRows
	}
	// rows is capped and cols matches a real schema, so the size
	// arithmetic below cannot overflow uint64.
	need := uint64(HeaderSize) + 16*rows64*cols64
	if uint64(len(in)) < need {
		return ErrShortFrame
	}
	if uint64(len(in)) > need {
		return ErrTrailingData
	}
	rows, cols := int(rows64), int(cols64)
	nvals := rows * cols
	payload := in[HeaderSize:]
	var lows, highs []float64
	lv, lok := floatView(payload[:8*nvals])
	hv, hok := floatView(payload[8*nvals:])
	if lok && hok {
		lows, highs = lv, hv
	} else {
		// Foreign byte order (or a misaligned buffer): decode into the
		// pooled slab instead of viewing in place.
		if cap(b.floats) < 2*nvals {
			//lint:allow hotpathalloc grow-once decode slab for hosts without the in-place view
			b.floats = make([]float64, 2*nvals)
		}
		slab := b.floats[:2*nvals]
		for i := range slab {
			slab[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[8*i:]))
		}
		lows, highs = slab[:nvals], slab[nvals:]
	}
	if err := CheckFinite(lows); err != nil {
		return err
	}
	if err := CheckFinite(highs); err != nil {
		return err
	}
	if cap(b.preds) < rows {
		//lint:allow hotpathalloc grow-once predicate views; a pooled buffer keeps its high-water capacity
		b.preds = make([]query.Predicate, rows)
	}
	preds := b.preds[:rows]
	for i := 0; i < rows; i++ {
		preds[i] = query.Predicate{
			Lows:  lows[i*cols : (i+1)*cols : (i+1)*cols],
			Highs: highs[i*cols : (i+1)*cols : (i+1)*cols],
		}
	}
	b.preds = preds
	b.Req = Request{Generation: gen, Rows: rows, Cols: cols, Preds: preds}
	return nil
}

// EncodeResponse encodes a response frame for cards into b.Out, reclaiming
// the request bytes' backing array: a response (24 + 8·rows) never
// outgrows the request (24 + 16·rows·cols) that produced it, so by the
// time the caller encodes, the decode views are dead by contract. framed
// prepends the streaming endpoints' length prefix.
func (b *Buffer) EncodeResponse(gen uint64, flags uint16, cards []float64, framed bool) {
	size := HeaderSize + 8*len(cards)
	total := size
	if framed {
		total += LenPrefixSize
	}
	if cap(b.In) < total {
		//lint:allow hotpathalloc grow-once frame storage (only a framed empty response can outgrow its request)
		b.In = make([]byte, 0, total)
	}
	out := b.In[:total]
	off := 0
	if framed {
		binary.LittleEndian.PutUint32(out[0:], uint32(size))
		off = LenPrefixSize
	}
	h := out[off:]
	binary.LittleEndian.PutUint32(h[0:], Magic)
	binary.LittleEndian.PutUint16(h[4:], Version)
	binary.LittleEndian.PutUint16(h[6:], flags)
	binary.LittleEndian.PutUint64(h[8:], gen)
	binary.LittleEndian.PutUint32(h[16:], uint32(len(cards)))
	binary.LittleEndian.PutUint32(h[20:], 0)
	body := h[HeaderSize:]
	if v, ok := floatView(body); ok {
		copy(v, cards)
	} else {
		for i, c := range cards {
			binary.LittleEndian.PutUint64(body[8*i:], math.Float64bits(c))
		}
	}
	b.Out = out
}

// EncodeError encodes a zero-row error response (FlagError plus the given
// flags) into b.Out — the streaming endpoint's in-band failure signal.
func (b *Buffer) EncodeError(flags uint16, framed bool) {
	b.EncodeResponse(0, flags|FlagError, nil, framed)
}

// CheckFinite reports ErrNonFinite if any value is NaN or ±Inf: all-ones
// exponent bits. Shared by the binary decoder and the JSON predicate
// decoder so both protocols reject the same poison the same way.
func CheckFinite(vals []float64) error {
	const expMask = 0x7ff0000000000000
	for _, v := range vals {
		if math.Float64bits(v)&expMask == expMask {
			return ErrNonFinite
		}
	}
	return nil
}

// AppendRequest appends one encoded request frame for preds to dst and
// returns the extended slice — the client-side encoder (benchmarks, tests,
// Go clients). Every predicate must span the same column count. framed
// prepends the streaming length prefix.
func AppendRequest(dst []byte, gen uint64, preds []query.Predicate, framed bool) ([]byte, error) {
	rows := len(preds)
	cols := 0
	if rows > 0 {
		cols = len(preds[0].Lows)
	}
	for _, p := range preds {
		if len(p.Lows) != cols || len(p.Highs) != cols {
			return nil, ErrCols
		}
	}
	size := HeaderSize + 16*rows*cols
	var s [8]byte
	if framed {
		binary.LittleEndian.PutUint32(s[:4], uint32(size))
		dst = append(dst, s[:4]...)
	}
	binary.LittleEndian.PutUint32(s[:4], Magic)
	dst = append(dst, s[:4]...)
	binary.LittleEndian.PutUint16(s[:2], Version)
	dst = append(dst, s[:2]...)
	binary.LittleEndian.PutUint16(s[:2], 0)
	dst = append(dst, s[:2]...)
	binary.LittleEndian.PutUint64(s[:], gen)
	dst = append(dst, s[:]...)
	binary.LittleEndian.PutUint32(s[:4], uint32(rows))
	dst = append(dst, s[:4]...)
	binary.LittleEndian.PutUint32(s[:4], uint32(cols))
	dst = append(dst, s[:4]...)
	for _, p := range preds {
		for _, v := range p.Lows {
			binary.LittleEndian.PutUint64(s[:], math.Float64bits(v))
			dst = append(dst, s[:]...)
		}
	}
	for _, p := range preds {
		for _, v := range p.Highs {
			binary.LittleEndian.PutUint64(s[:], math.Float64bits(v))
			dst = append(dst, s[:]...)
		}
	}
	return dst, nil
}

// ResponseHeader is the decoded fixed part of a response frame.
type ResponseHeader struct {
	Generation uint64
	Flags      uint16
	Rows       int
}

// Degraded reports the FlagDegraded bit.
func (h ResponseHeader) Degraded() bool { return h.Flags&FlagDegraded != 0 }

// Err reports the FlagError bit.
func (h ResponseHeader) Err() bool { return h.Flags&FlagError != 0 }

// DecodeResponse parses one (unframed) response frame, appending the
// cardinalities to cards[:0] so callers can reuse one slice across calls.
func DecodeResponse(frame []byte, cards []float64) (ResponseHeader, []float64, error) {
	if len(frame) < HeaderSize {
		return ResponseHeader{}, nil, ErrShortFrame
	}
	if binary.LittleEndian.Uint32(frame[0:]) != Magic {
		return ResponseHeader{}, nil, ErrMagic
	}
	if binary.LittleEndian.Uint16(frame[4:]) != Version {
		return ResponseHeader{}, nil, ErrVersion
	}
	h := ResponseHeader{
		Flags:      binary.LittleEndian.Uint16(frame[6:]),
		Generation: binary.LittleEndian.Uint64(frame[8:]),
		Rows:       int(binary.LittleEndian.Uint32(frame[16:])),
	}
	need := uint64(HeaderSize) + 8*uint64(h.Rows)
	if uint64(len(frame)) < need {
		return ResponseHeader{}, nil, ErrShortFrame
	}
	if uint64(len(frame)) > need {
		return ResponseHeader{}, nil, ErrTrailingData
	}
	cards = cards[:0]
	body := frame[HeaderSize:]
	for i := 0; i < h.Rows; i++ {
		cards = append(cards, math.Float64frombits(binary.LittleEndian.Uint64(body[8*i:])))
	}
	return h, cards, nil
}
