package wire

import (
	"bytes"
	"io"
	"testing"
)

// FuzzDecodeBatch throws arbitrary bytes at the request decoder. The
// invariants: never panic, never over-read (every decoded bound comes from
// inside the frame — pinned by the exact re-encode check), and a
// successful decode is canonical: re-encoding the decoded batch reproduces
// the input frame byte for byte.
func FuzzDecodeBatch(f *testing.F) {
	valid, _ := AppendRequest(nil, 7, testPreds(2, 3), false)
	f.Add(valid, uint16(3), uint16(16))
	f.Add(valid[:10], uint16(3), uint16(16))
	f.Add(append(append([]byte{}, valid...), 0xAB), uint16(3), uint16(16))
	f.Add([]byte("WRPB"), uint16(1), uint16(1))
	f.Add([]byte{}, uint16(0), uint16(0))
	f.Fuzz(func(t *testing.T, data []byte, cols, maxRows uint16) {
		b := NewBuffer()
		b.In = append(b.In[:0], data...)
		if err := b.DecodeBatch(int(cols), int(maxRows)); err != nil {
			return
		}
		if b.Req.Rows > int(maxRows) {
			t.Fatalf("decoded %d rows past the cap %d", b.Req.Rows, maxRows)
		}
		// A canonical empty batch decodes with Cols == 0 whatever the
		// schema width asked for; non-empty batches must match it exactly.
		if b.Req.Rows == 0 {
			if b.Req.Cols != 0 || len(b.Req.Preds) != 0 {
				t.Fatalf("inconsistent empty decode: %+v with %d preds", b.Req, len(b.Req.Preds))
			}
		} else if b.Req.Cols != int(cols) || len(b.Req.Preds) != b.Req.Rows {
			t.Fatalf("inconsistent decode: %+v with %d preds", b.Req, len(b.Req.Preds))
		}
		for i, p := range b.Req.Preds {
			if len(p.Lows) != int(cols) || len(p.Highs) != int(cols) {
				t.Fatalf("pred %d spans %d/%d cols, want %d", i, len(p.Lows), len(p.Highs), cols)
			}
			if CheckFinite(p.Lows) != nil || CheckFinite(p.Highs) != nil {
				t.Fatalf("non-finite bound survived decode in pred %d", i)
			}
		}
		// Canonical round trip: the accepted frame IS the encoding of what
		// was decoded. This also proves no decoded value came from outside
		// the frame.
		re, err := AppendRequest(nil, b.Req.Generation, b.Req.Preds, false)
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("re-encode differs from accepted frame:\n got %x\nwant %x", re, data)
		}
	})
}

// FuzzReadFrame throws arbitrary byte streams at the length-prefixed frame
// reader: it must never panic, always terminate, and only ever fail with
// io.EOF (clean end), ErrShortFrame or ErrFrameTooLarge.
func FuzzReadFrame(f *testing.F) {
	framed, _ := AppendRequest(nil, 1, testPreds(1, 2), true)
	f.Add(framed)
	f.Add(append(append([]byte{}, framed...), framed...))
	f.Add(framed[:3])
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		b := NewBuffer()
		for i := 0; i < 64; i++ {
			err := b.ReadFrame(r, 1<<12)
			if err == nil {
				_ = b.DecodeBatch(2, 16) // any outcome is fine; it must not panic
				continue
			}
			if err != io.EOF && err != ErrShortFrame && err != ErrFrameTooLarge {
				t.Fatalf("unexpected error class: %v", err)
			}
			return
		}
	})
}
