// Package simclock provides the virtual time base of the experiment harness.
// The paper's experiments run over 30-minute wall-clock windows with fixed
// query arrival rates; re-running them in real time would make the
// reproduction take hours and be nondeterministic. Instead, real compute
// costs (annotation scans, model updates, Warper component training) are
// measured with real timers on the actual work and charged to a virtual
// clock, preserving the paper's cost accounting (§4.3: CPU% = busy/period)
// while keeping experiments fast and deterministic.
package simclock

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Clock is a virtual clock.
type Clock struct {
	now time.Duration
}

// Now returns the current virtual time since the clock's epoch.
func (c *Clock) Now() time.Duration { return c.now }

// Advance moves the clock forward. Negative advances panic.
func (c *Clock) Advance(d time.Duration) {
	if d < 0 {
		panic("simclock: negative advance")
	}
	c.now += d
}

// Arrivals models a deterministic fixed-rate query arrival process, e.g. the
// paper's "one test query arrival per five seconds".
type Arrivals struct {
	Interval time.Duration // time between consecutive arrivals
}

// CountBetween returns how many queries arrive in the half-open virtual
// interval (from, to]. Arrival k happens at time (k+1)·Interval.
func (a Arrivals) CountBetween(from, to time.Duration) int {
	if a.Interval <= 0 {
		panic("simclock: non-positive arrival interval")
	}
	if to <= from {
		return 0
	}
	return int(to/a.Interval) - int(from/a.Interval)
}

// Ledger accumulates named busy-time charges (annotation, model update, GAN
// training, …) so experiments can report per-component costs and CPU
// utilization exactly as Table 6 and Table 11 do.
type Ledger struct {
	charges map[string]time.Duration
	calls   map[string]int
}

// NewLedger returns an empty ledger.
func NewLedger() *Ledger {
	return &Ledger{charges: make(map[string]time.Duration), calls: make(map[string]int)}
}

// Charge adds busy time under the given component name.
func (l *Ledger) Charge(name string, d time.Duration) {
	if d < 0 {
		panic("simclock: negative charge")
	}
	l.charges[name] += d
	l.calls[name]++
}

// Get returns the accumulated busy time for one component.
func (l *Ledger) Get(name string) time.Duration { return l.charges[name] }

// Calls returns how many times the component was charged. Retried annotation
// attempts charge once per attempt, so tests can pin attempt counts here.
func (l *Ledger) Calls(name string) int { return l.calls[name] }

// Total returns the sum over all components.
func (l *Ledger) Total() time.Duration {
	var t time.Duration
	for _, d := range l.charges {
		t += d
	}
	return t
}

// Reset clears all charges.
func (l *Ledger) Reset() {
	l.charges = make(map[string]time.Duration)
	l.calls = make(map[string]int)
}

// String renders the ledger sorted by component name.
func (l *Ledger) String() string {
	names := make([]string, 0, len(l.charges))
	for n := range l.charges {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		fmt.Fprintf(&b, "%s=%v ", n, l.charges[n])
	}
	return strings.TrimSpace(b.String())
}

// CPUPercent converts busy time within a period to average single-core CPU
// utilization in percent (the unit of Table 6).
func CPUPercent(busy, period time.Duration) float64 {
	if period <= 0 {
		panic("simclock: non-positive period")
	}
	return float64(busy) / float64(period) * 100
}

// Stopwatch measures real compute so it can be charged to the virtual clock.
type Stopwatch struct{ start time.Time }

// StartWatch begins timing.
func StartWatch() Stopwatch { return Stopwatch{start: time.Now()} }

// Stop returns the elapsed real time.
func (s Stopwatch) Stop() time.Duration { return time.Since(s.start) }
