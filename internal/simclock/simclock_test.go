package simclock

import (
	"testing"
	"time"
)

func TestClockAdvance(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Error("fresh clock not at zero")
	}
	c.Advance(5 * time.Second)
	c.Advance(2 * time.Second)
	if c.Now() != 7*time.Second {
		t.Errorf("Now = %v", c.Now())
	}
}

func TestClockNegativeAdvancePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	var c Clock
	c.Advance(-time.Second)
}

func TestArrivalsCount(t *testing.T) {
	a := Arrivals{Interval: 5 * time.Second}
	if got := a.CountBetween(0, 30*time.Second); got != 6 {
		t.Errorf("arrivals in 30s = %d, want 6", got)
	}
	if got := a.CountBetween(0, 4*time.Second); got != 0 {
		t.Errorf("arrivals in 4s = %d, want 0", got)
	}
	if got := a.CountBetween(5*time.Second, 10*time.Second); got != 1 {
		t.Errorf("arrivals in (5,10] = %d, want 1", got)
	}
	if got := a.CountBetween(10*time.Second, 10*time.Second); got != 0 {
		t.Errorf("empty interval = %d", got)
	}
}

func TestArrivalsDisjointIntervalsSum(t *testing.T) {
	a := Arrivals{Interval: 7 * time.Second}
	total := a.CountBetween(0, 100*time.Second)
	split := a.CountBetween(0, 33*time.Second) + a.CountBetween(33*time.Second, 100*time.Second)
	if total != split {
		t.Errorf("split count %d != total %d", split, total)
	}
}

func TestLedger(t *testing.T) {
	l := NewLedger()
	l.Charge("annotate", 3*time.Second)
	l.Charge("annotate", 2*time.Second)
	l.Charge("model", time.Second)
	if l.Get("annotate") != 5*time.Second {
		t.Errorf("annotate = %v", l.Get("annotate"))
	}
	if l.Total() != 6*time.Second {
		t.Errorf("total = %v", l.Total())
	}
	if s := l.String(); s != "annotate=5s model=1s" {
		t.Errorf("String = %q", s)
	}
	l.Reset()
	if l.Total() != 0 {
		t.Error("reset failed")
	}
}

func TestCPUPercent(t *testing.T) {
	if got := CPUPercent(3*time.Second, 5*time.Minute); got != 1 {
		t.Errorf("CPUPercent = %v, want 1", got)
	}
}

func TestStopwatch(t *testing.T) {
	w := StartWatch()
	if w.Stop() < 0 {
		t.Error("negative elapsed")
	}
}
