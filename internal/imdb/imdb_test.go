package imdb

import (
	"context"
	"math/rand"
	"testing"

	"warper/internal/annotator"
)

func TestGenerateStarSchema(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	db := Generate(Config{Titles: 1000}, rng)
	if db.Title.NumRows() != 1000 {
		t.Fatalf("titles = %d", db.Title.NumRows())
	}
	if db.MovieCompanies.NumRows() < 1000 {
		t.Errorf("movie_companies = %d, want >= titles", db.MovieCompanies.NumRows())
	}
	if len(db.Catalog.Order) != 3 || len(db.Catalog.Joins) != 2 {
		t.Errorf("catalog: %d tables, %d joins", len(db.Catalog.Order), len(db.Catalog.Joins))
	}
}

func TestForeignKeysResolve(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	db := Generate(Config{Titles: 500}, rng)
	ids := map[float64]bool{}
	for _, v := range db.Title.Cols[0].Vals {
		ids[v] = true
	}
	for _, v := range db.MovieCompanies.Cols[0].Vals {
		if !ids[v] {
			t.Fatal("dangling movie_companies.movie_id")
		}
	}
	for _, v := range db.MovieInfo.Cols[0].Vals {
		if !ids[v] {
			t.Fatal("dangling movie_info.movie_id")
		}
	}
}

func TestJoinWorkloadQueriesAnnotatable(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	db := Generate(Config{Titles: 800}, rng)
	ja := annotator.NewJoin(db.Tables()...)
	for _, style := range []string{"uniform", "sample"} {
		jw := &JoinWorkload{DB: db, PredStyle: style}
		qs := jw.Generate(30, rng)
		nonZero := 0
		for _, q := range qs {
			card, err := ja.Count(context.Background(), q)
			if err != nil {
				t.Fatalf("Count: %v", err)
			}
			if card < 0 {
				t.Fatal("negative cardinality")
			}
			if card > 0 {
				nonZero++
			}
		}
		// Most queries should be non-empty; all-empty would make the CE
		// training signal degenerate.
		if nonZero < 10 {
			t.Errorf("style %s: only %d/30 queries non-empty", style, nonZero)
		}
	}
}

func TestJoinWorkloadCoversAllShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	db := Generate(Config{Titles: 300}, rng)
	jw := &JoinWorkload{DB: db, PredStyle: "uniform"}
	twoWay, threeWay := false, false
	for i := 0; i < 50; i++ {
		q := jw.Gen(rng)
		switch len(q.Tables) {
		case 2:
			twoWay = true
		case 3:
			threeWay = true
		}
		for _, name := range q.Tables {
			if _, ok := q.Preds[name]; !ok {
				t.Fatal("table without predicate")
			}
		}
	}
	if !twoWay || !threeWay {
		t.Error("workload missed a join shape")
	}
}
