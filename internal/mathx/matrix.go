package mathx

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols, row-major
}

// NewMatrix returns a zero Rows×Cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("mathx: negative matrix dimensions")
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from row slices. All rows must have equal length.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic(fmt.Sprintf("mathx: ragged rows: row %d has %d cols, want %d", i, len(r), m.Cols))
		}
		copy(m.Data[i*m.Cols:(i+1)*m.Cols], r)
	}
	return m
}

// At returns m[i,j].
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns m[i,j] = v.
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view (not a copy) of row i.
func (m *Matrix) Row(i int) Vector { return Vector(m.Data[i*m.Cols : (i+1)*m.Cols]) }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// T returns the transpose of m.
func (m *Matrix) T() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

// Mul returns m*n. It panics on a dimension mismatch.
func (m *Matrix) Mul(n *Matrix) *Matrix {
	if m.Cols != n.Rows {
		panic(fmt.Sprintf("mathx: Mul dimension mismatch %dx%d * %dx%d", m.Rows, m.Cols, n.Rows, n.Cols))
	}
	out := NewMatrix(m.Rows, n.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < m.Cols; k++ {
			a := m.At(i, k)
			if a == 0 {
				continue
			}
			for j := 0; j < n.Cols; j++ {
				out.Data[i*out.Cols+j] += a * n.At(k, j)
			}
		}
	}
	return out
}

// MulVec returns m*v as a vector. It panics on a dimension mismatch.
func (m *Matrix) MulVec(v Vector) Vector {
	if m.Cols != len(v) {
		panic(fmt.Sprintf("mathx: MulVec dimension mismatch %dx%d * %d", m.Rows, m.Cols, len(v)))
	}
	out := NewVector(m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = m.Row(i).Dot(v)
	}
	return out
}

// Covariance returns the d×d covariance matrix of the rows of X (n×d), along
// with the column means. Rows are observations.
func Covariance(X *Matrix) (*Matrix, Vector) {
	n, d := X.Rows, X.Cols
	means := NewVector(d)
	for i := 0; i < n; i++ {
		means.AddInPlace(X.Row(i), 1)
	}
	if n > 0 {
		means = means.Scale(1 / float64(n))
	}
	cov := NewMatrix(d, d)
	if n < 2 {
		return cov, means
	}
	for i := 0; i < n; i++ {
		row := X.Row(i)
		for a := 0; a < d; a++ {
			da := row[a] - means[a]
			if da == 0 {
				continue
			}
			for b := a; b < d; b++ {
				cov.Data[a*d+b] += da * (row[b] - means[b])
			}
		}
	}
	inv := 1 / float64(n-1)
	for a := 0; a < d; a++ {
		for b := a; b < d; b++ {
			v := cov.At(a, b) * inv
			cov.Set(a, b, v)
			cov.Set(b, a, v)
		}
	}
	return cov, means
}

// JacobiEigen computes the eigenvalues and eigenvectors of a symmetric matrix
// using the cyclic Jacobi method. It returns eigenvalues sorted descending and
// the corresponding eigenvectors as matrix columns. The input is not modified.
func JacobiEigen(sym *Matrix) (Vector, *Matrix) {
	if sym.Rows != sym.Cols {
		panic("mathx: JacobiEigen requires a square matrix")
	}
	n := sym.Rows
	a := sym.Clone()
	v := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		v.Set(i, i, 1)
	}
	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		// Sum of squares of off-diagonal elements.
		var off float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += a.At(i, j) * a.At(i, j)
			}
		}
		if off < 1e-22 {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := a.At(p, q)
				if math.Abs(apq) < 1e-300 {
					continue
				}
				app, aqq := a.At(p, p), a.At(q, q)
				theta := (aqq - app) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(1+theta*theta))
				} else {
					t = -1 / (-theta + math.Sqrt(1+theta*theta))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c
				// Rotate rows/cols p and q of a.
				for k := 0; k < n; k++ {
					akp, akq := a.At(k, p), a.At(k, q)
					a.Set(k, p, c*akp-s*akq)
					a.Set(k, q, s*akp+c*akq)
				}
				for k := 0; k < n; k++ {
					apk, aqk := a.At(p, k), a.At(q, k)
					a.Set(p, k, c*apk-s*aqk)
					a.Set(q, k, s*apk+c*aqk)
				}
				// Accumulate the rotation into v.
				for k := 0; k < n; k++ {
					vkp, vkq := v.At(k, p), v.At(k, q)
					v.Set(k, p, c*vkp-s*vkq)
					v.Set(k, q, s*vkp+c*vkq)
				}
			}
		}
	}
	vals := NewVector(n)
	for i := 0; i < n; i++ {
		vals[i] = a.At(i, i)
	}
	// Sort eigenvalues descending, permuting eigenvector columns alongside.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	for i := 0; i < n; i++ {
		best := i
		for j := i + 1; j < n; j++ {
			if vals[idx[j]] > vals[idx[best]] {
				best = j
			}
		}
		idx[i], idx[best] = idx[best], idx[i]
	}
	sortedVals := NewVector(n)
	vecs := NewMatrix(n, n)
	for c := 0; c < n; c++ {
		sortedVals[c] = vals[idx[c]]
		for r := 0; r < n; r++ {
			vecs.Set(r, c, v.At(r, idx[c]))
		}
	}
	return sortedVals, vecs
}
