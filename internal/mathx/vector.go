// Package mathx provides the small linear-algebra and statistics toolkit that
// the rest of the system builds on: dense vectors and matrices, covariance,
// a Jacobi eigen-decomposition used for PCA, multidimensional histograms and
// the Jensen-Shannon divergence used by the drift detector.
//
// Everything here is deliberately simple and allocation-conscious; the
// dimensionalities involved (predicate featurizations, PCA to 2..10 dims)
// are tiny, so clarity wins over asymptotic cleverness.
package mathx

import (
	"fmt"
	"math"
)

// Vector is a dense float64 vector.
type Vector []float64

// NewVector returns a zero vector of length n.
func NewVector(n int) Vector { return make(Vector, n) }

// Clone returns a copy of v.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// Add returns v + w. It panics if lengths differ.
func (v Vector) Add(w Vector) Vector {
	mustSameLen(len(v), len(w))
	out := make(Vector, len(v))
	for i := range v {
		out[i] = v[i] + w[i]
	}
	return out
}

// Sub returns v - w. It panics if lengths differ.
func (v Vector) Sub(w Vector) Vector {
	mustSameLen(len(v), len(w))
	out := make(Vector, len(v))
	for i := range v {
		out[i] = v[i] - w[i]
	}
	return out
}

// Scale returns a*v.
func (v Vector) Scale(a float64) Vector {
	out := make(Vector, len(v))
	for i := range v {
		out[i] = a * v[i]
	}
	return out
}

// Dot returns the inner product of v and w. It panics if lengths differ.
func (v Vector) Dot(w Vector) float64 {
	mustSameLen(len(v), len(w))
	var s float64
	for i := range v {
		s += v[i] * w[i]
	}
	return s
}

// Norm returns the Euclidean norm of v.
func (v Vector) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// Normalize scales v in place to unit Euclidean norm. Zero vectors are left
// unchanged.
func (v Vector) Normalize() {
	n := v.Norm()
	if n == 0 {
		return
	}
	for i := range v {
		v[i] /= n
	}
}

// AddInPlace sets v = v + a*w. It panics if lengths differ.
func (v Vector) AddInPlace(w Vector, a float64) {
	mustSameLen(len(v), len(w))
	for i := range v {
		v[i] += a * w[i]
	}
}

// Sum returns the sum of elements of v.
func (v Vector) Sum() float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s
}

// Mean returns the arithmetic mean of v, or 0 for an empty vector.
func (v Vector) Mean() float64 {
	if len(v) == 0 {
		return 0
	}
	return v.Sum() / float64(len(v))
}

// Std returns the population standard deviation of v, or 0 for vectors with
// fewer than two elements.
func (v Vector) Std() float64 {
	if len(v) < 2 {
		return 0
	}
	m := v.Mean()
	var s float64
	for _, x := range v {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(v)))
}

// Max returns the maximum element; it panics on an empty vector.
func (v Vector) Max() float64 {
	if len(v) == 0 {
		panic("mathx: Max of empty vector")
	}
	m := v[0]
	for _, x := range v[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Min returns the minimum element; it panics on an empty vector.
func (v Vector) Min() float64 {
	if len(v) == 0 {
		panic("mathx: Min of empty vector")
	}
	m := v[0]
	for _, x := range v[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// ArgMax returns the index of the maximum element; -1 for an empty vector.
func (v Vector) ArgMax() int {
	if len(v) == 0 {
		return -1
	}
	best, bi := v[0], 0
	for i, x := range v[1:] {
		if x > best {
			best, bi = x, i+1
		}
	}
	return bi
}

func mustSameLen(a, b int) {
	if a != b {
		panic(fmt.Sprintf("mathx: length mismatch %d vs %d", a, b))
	}
}

// Clamp returns x limited to [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Mean returns the arithmetic mean of xs, or 0 if xs is empty.
func Mean(xs []float64) float64 { return Vector(xs).Mean() }

// GeoMean returns the geometric mean of xs. All values must be positive; it
// returns 0 for an empty slice.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		if x <= 0 {
			panic("mathx: GeoMean requires positive values")
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// Quantile returns the q-th quantile (0 <= q <= 1) of xs using linear
// interpolation. xs must be sorted ascending and non-empty.
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		panic("mathx: Quantile of empty slice")
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}
