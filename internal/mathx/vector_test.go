package mathx

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestVectorBasicOps(t *testing.T) {
	v := Vector{1, 2, 3}
	w := Vector{4, 5, 6}
	if got := v.Add(w); got[0] != 5 || got[1] != 7 || got[2] != 9 {
		t.Errorf("Add = %v", got)
	}
	if got := v.Sub(w); got[0] != -3 || got[1] != -3 || got[2] != -3 {
		t.Errorf("Sub = %v", got)
	}
	if got := v.Scale(2); got[0] != 2 || got[1] != 4 || got[2] != 6 {
		t.Errorf("Scale = %v", got)
	}
	if got := v.Dot(w); got != 32 {
		t.Errorf("Dot = %v, want 32", got)
	}
	if got := v.Sum(); got != 6 {
		t.Errorf("Sum = %v, want 6", got)
	}
	if got := v.Mean(); got != 2 {
		t.Errorf("Mean = %v, want 2", got)
	}
	if got := w.Max(); got != 6 {
		t.Errorf("Max = %v, want 6", got)
	}
	if got := w.Min(); got != 4 {
		t.Errorf("Min = %v, want 4", got)
	}
	if got := w.ArgMax(); got != 2 {
		t.Errorf("ArgMax = %v, want 2", got)
	}
}

func TestVectorLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	Vector{1}.Add(Vector{1, 2})
}

func TestVectorNormAndNormalize(t *testing.T) {
	v := Vector{3, 4}
	if !almostEq(v.Norm(), 5, 1e-12) {
		t.Errorf("Norm = %v, want 5", v.Norm())
	}
	v.Normalize()
	if !almostEq(v.Norm(), 1, 1e-12) {
		t.Errorf("normalized Norm = %v, want 1", v.Norm())
	}
	z := Vector{0, 0}
	z.Normalize() // must not panic or produce NaN
	if z[0] != 0 || z[1] != 0 {
		t.Errorf("zero vector changed by Normalize: %v", z)
	}
}

func TestVectorCloneIsIndependent(t *testing.T) {
	v := Vector{1, 2}
	c := v.Clone()
	c[0] = 99
	if v[0] != 1 {
		t.Error("Clone aliases the original")
	}
}

func TestStd(t *testing.T) {
	v := Vector{2, 4, 4, 4, 5, 5, 7, 9}
	if !almostEq(v.Std(), 2, 1e-12) {
		t.Errorf("Std = %v, want 2", v.Std())
	}
	if (Vector{5}).Std() != 0 {
		t.Error("Std of singleton should be 0")
	}
}

func TestClamp(t *testing.T) {
	cases := []struct{ x, lo, hi, want float64 }{
		{-1, 0, 1, 0}, {2, 0, 1, 1}, {0.5, 0, 1, 0.5},
	}
	for _, c := range cases {
		if got := Clamp(c.x, c.lo, c.hi); got != c.want {
			t.Errorf("Clamp(%v,%v,%v) = %v, want %v", c.x, c.lo, c.hi, got, c.want)
		}
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4}); !almostEq(got, 2, 1e-12) {
		t.Errorf("GeoMean = %v, want 2", got)
	}
	if got := GeoMean(nil); got != 0 {
		t.Errorf("GeoMean(nil) = %v, want 0", got)
	}
}

func TestGeoMeanPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	GeoMean([]float64{1, 0})
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if got := Quantile(xs, 0); got != 1 {
		t.Errorf("q0 = %v", got)
	}
	if got := Quantile(xs, 1); got != 5 {
		t.Errorf("q1 = %v", got)
	}
	if got := Quantile(xs, 0.5); got != 3 {
		t.Errorf("q.5 = %v", got)
	}
	if got := Quantile(xs, 0.25); got != 2 {
		t.Errorf("q.25 = %v", got)
	}
}

// Property: dot product is symmetric and Cauchy-Schwarz holds.
func TestDotProperties(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) < 2 {
			return true
		}
		n := len(raw) / 2
		v, w := Vector(raw[:n]), Vector(raw[n:2*n])
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e6 {
				return true
			}
		}
		d1, d2 := v.Dot(w), w.Dot(v)
		if d1 != d2 {
			return false
		}
		return math.Abs(d1) <= v.Norm()*w.Norm()*(1+1e-9)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

// Property: Add then Sub is identity.
func TestAddSubRoundTrip(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) < 2 {
			return true
		}
		n := len(raw) / 2
		v, w := Vector(raw[:n]), Vector(raw[n:2*n])
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e12 {
				return true
			}
		}
		back := v.Add(w).Sub(w)
		for i := range v {
			if !almostEq(back[i], v[i], 1e-6*(1+math.Abs(v[i]))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(2))}); err != nil {
		t.Error(err)
	}
}
