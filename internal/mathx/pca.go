package mathx

// PCA holds a fitted principal-component projection: the top-k eigenvectors
// of the sample covariance of the fitted rows, together with the column means
// used for centering. The paper uses this both to visualize workloads in 2-d
// (Figures 1, 5, 7) and to reduce predicates to k dims inside the
// Jensen-Shannon drift metric (§3.1).
type PCA struct {
	K          int     // number of retained components
	Means      Vector  // column means of the fitting data
	Components *Matrix // d×k, eigenvectors as columns, unit norm
	Eigvals    Vector  // top-k eigenvalues, descending
}

// FitPCA fits a k-component PCA to the rows of X (n×d). If k exceeds d it is
// reduced to d. A degenerate input (n<2) yields a projection onto the first k
// coordinate axes so that downstream code keeps working.
func FitPCA(X *Matrix, k int) *PCA {
	d := X.Cols
	if k > d {
		k = d
	}
	if k < 1 {
		k = 1
		if d == 0 {
			panic("mathx: FitPCA on zero-column matrix")
		}
	}
	cov, means := Covariance(X)
	p := &PCA{K: k, Means: means, Components: NewMatrix(d, k), Eigvals: NewVector(k)}
	if X.Rows < 2 {
		for c := 0; c < k; c++ {
			p.Components.Set(c, c, 1)
		}
		return p
	}
	vals, vecs := JacobiEigen(cov)
	for c := 0; c < k; c++ {
		p.Eigvals[c] = vals[c]
		for r := 0; r < d; r++ {
			p.Components.Set(r, c, vecs.At(r, c))
		}
	}
	return p
}

// Project maps a single d-dim row to its k-dim principal-component scores.
func (p *PCA) Project(row Vector) Vector {
	centered := row.Sub(p.Means)
	out := NewVector(p.K)
	for c := 0; c < p.K; c++ {
		var s float64
		for r := 0; r < len(centered); r++ {
			s += centered[r] * p.Components.At(r, c)
		}
		out[c] = s
	}
	return out
}

// ProjectAll maps every row of X to PCA space, returning an n×k matrix.
func (p *PCA) ProjectAll(X *Matrix) *Matrix {
	out := NewMatrix(X.Rows, p.K)
	for i := 0; i < X.Rows; i++ {
		copy(out.Data[i*p.K:(i+1)*p.K], p.Project(X.Row(i)))
	}
	return out
}
