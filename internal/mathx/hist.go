package mathx

import "math"

// Histogram is a normalized frequency histogram over a fixed number of
// buckets. It is the building block of the discrete Jensen-Shannon workload
// drift metric from §3.1 of the paper.
type Histogram struct {
	Freq Vector // normalized frequencies; sums to 1 if any observation was added
	n    int
}

// NewHistogram returns a histogram with the given number of buckets.
func NewHistogram(buckets int) *Histogram {
	if buckets <= 0 {
		panic("mathx: histogram needs at least one bucket")
	}
	return &Histogram{Freq: NewVector(buckets)}
}

// AddBucket increments bucket b. Out-of-range buckets are clamped.
func (h *Histogram) AddBucket(b int) {
	if b < 0 {
		b = 0
	}
	if b >= len(h.Freq) {
		b = len(h.Freq) - 1
	}
	h.Freq[b]++
	h.n++
}

// Count returns the number of observations added.
func (h *Histogram) Count() int { return h.n }

// Normalized returns the frequency vector scaled to sum to 1. An empty
// histogram yields a uniform distribution so divergence computations remain
// well defined.
func (h *Histogram) Normalized() Vector {
	out := h.Freq.Clone()
	if h.n == 0 {
		u := 1 / float64(len(out))
		for i := range out {
			out[i] = u
		}
		return out
	}
	inv := 1 / float64(h.n)
	for i := range out {
		out[i] *= inv
	}
	return out
}

// klEps is the smoothing constant added to every bucket before computing KL,
// matching the paper's "to prevent numeric error, we add a small constant to
// each H(x)".
const klEps = 1e-9

// KLDivergence returns KL(P||Q) over two discrete distributions of equal
// length, with eps smoothing and renormalization.
func KLDivergence(p, q Vector) float64 {
	mustSameLen(len(p), len(q))
	ps := smooth(p)
	qs := smooth(q)
	var s float64
	for i := range ps {
		s += ps[i] * (math.Log(ps[i]) - math.Log(qs[i]))
	}
	if s < 0 { // numeric guard; KL is non-negative
		s = 0
	}
	return s
}

// JSDivergence returns the Jensen-Shannon divergence between two discrete
// distributions, normalized to [0,1] (base-2): 0 means identical
// distributions, 1 means disjoint support. This is the symmetric measure
// δ_js(A,B) = ½(KL(A,M)+KL(B,M)) with M = ½(A+B) from §3.1.
func JSDivergence(p, q Vector) float64 {
	mustSameLen(len(p), len(q))
	ps := smooth(p)
	qs := smooth(q)
	m := NewVector(len(ps))
	for i := range m {
		m[i] = 0.5 * (ps[i] + qs[i])
	}
	js := 0.5*KLDivergence(ps, m) + 0.5*KLDivergence(qs, m)
	js /= math.Ln2 * 1 // convert nats to bits; max JS in bits is 1
	return Clamp(js, 0, 1)
}

func smooth(p Vector) Vector {
	out := make(Vector, len(p))
	var sum float64
	for i, x := range p {
		if x < 0 {
			x = 0
		}
		out[i] = x + klEps
		sum += out[i]
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}
