package mathx

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHistogramAddAndNormalize(t *testing.T) {
	h := NewHistogram(4)
	h.AddBucket(0)
	h.AddBucket(0)
	h.AddBucket(3)
	h.AddBucket(99) // clamped to 3
	h.AddBucket(-5) // clamped to 0
	n := h.Normalized()
	if !almostEq(n[0], 0.6, 1e-12) || !almostEq(n[3], 0.4, 1e-12) {
		t.Errorf("Normalized = %v", n)
	}
	if h.Count() != 5 {
		t.Errorf("Count = %d", h.Count())
	}
}

func TestEmptyHistogramIsUniform(t *testing.T) {
	h := NewHistogram(5)
	n := h.Normalized()
	for _, v := range n {
		if !almostEq(v, 0.2, 1e-12) {
			t.Errorf("empty histogram not uniform: %v", n)
		}
	}
}

func TestKLOfIdenticalIsZero(t *testing.T) {
	p := Vector{0.25, 0.25, 0.5}
	if got := KLDivergence(p, p); !almostEq(got, 0, 1e-9) {
		t.Errorf("KL(p,p) = %v", got)
	}
}

func TestJSDivergenceBounds(t *testing.T) {
	p := Vector{1, 0, 0, 0}
	q := Vector{0, 0, 0, 1}
	js := JSDivergence(p, q)
	if !almostEq(js, 1, 1e-4) {
		t.Errorf("JS of disjoint = %v, want ~1", js)
	}
	if got := JSDivergence(p, p); !almostEq(got, 0, 1e-6) {
		t.Errorf("JS(p,p) = %v, want 0", got)
	}
}

// Property: JS is symmetric and within [0,1] for arbitrary non-negative inputs.
func TestJSProperties(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) < 4 {
			return true
		}
		n := len(raw) / 2
		p := make(Vector, n)
		q := make(Vector, n)
		for i := 0; i < n; i++ {
			p[i] = abs1e6(raw[i])
			q[i] = abs1e6(raw[n+i])
		}
		a, b := JSDivergence(p, q), JSDivergence(q, p)
		if !almostEq(a, b, 1e-9) {
			return false
		}
		return a >= 0 && a <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(11))}); err != nil {
		t.Error(err)
	}
}

func abs1e6(x float64) float64 {
	if x != x || x > 1e6 || x < -1e6 { // NaN or huge
		return 1
	}
	if x < 0 {
		return -x
	}
	return x
}

// Property: KL is non-negative (Gibbs' inequality) after smoothing.
func TestKLNonNegative(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) < 4 {
			return true
		}
		n := len(raw) / 2
		p := make(Vector, n)
		q := make(Vector, n)
		for i := 0; i < n; i++ {
			p[i] = abs1e6(raw[i])
			q[i] = abs1e6(raw[n+i])
		}
		return KLDivergence(p, q) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(13))}); err != nil {
		t.Error(err)
	}
}
