package mathx

import (
	"math"
	"math/rand"
	"testing"
)

func TestMatrixMul(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	c := a.Mul(b)
	want := [][]float64{{19, 22}, {43, 50}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if c.At(i, j) != want[i][j] {
				t.Errorf("c[%d][%d] = %v, want %v", i, j, c.At(i, j), want[i][j])
			}
		}
	}
}

func TestMatrixMulVec(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	v := a.MulVec(Vector{1, 1, 1})
	if v[0] != 6 || v[1] != 15 {
		t.Errorf("MulVec = %v", v)
	}
}

func TestTranspose(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	at := a.T()
	if at.Rows != 3 || at.Cols != 2 {
		t.Fatalf("T dims = %dx%d", at.Rows, at.Cols)
	}
	if at.At(2, 1) != 6 || at.At(0, 0) != 1 {
		t.Errorf("T values wrong: %v", at.Data)
	}
}

func TestMulDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMatrix(2, 3).Mul(NewMatrix(2, 3))
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestCovarianceKnown(t *testing.T) {
	// Two perfectly correlated columns.
	X := FromRows([][]float64{{1, 2}, {2, 4}, {3, 6}})
	cov, means := Covariance(X)
	if !almostEq(means[0], 2, 1e-12) || !almostEq(means[1], 4, 1e-12) {
		t.Errorf("means = %v", means)
	}
	if !almostEq(cov.At(0, 0), 1, 1e-12) {
		t.Errorf("var(x) = %v, want 1", cov.At(0, 0))
	}
	if !almostEq(cov.At(1, 1), 4, 1e-12) {
		t.Errorf("var(y) = %v, want 4", cov.At(1, 1))
	}
	if !almostEq(cov.At(0, 1), 2, 1e-12) || !almostEq(cov.At(1, 0), 2, 1e-12) {
		t.Errorf("cov = %v", cov.Data)
	}
}

func TestCovarianceDegenerate(t *testing.T) {
	X := FromRows([][]float64{{1, 2}})
	cov, means := Covariance(X)
	if means[0] != 1 || means[1] != 2 {
		t.Errorf("means = %v", means)
	}
	for _, v := range cov.Data {
		if v != 0 {
			t.Errorf("cov of single row should be zero, got %v", cov.Data)
		}
	}
}

func TestJacobiEigenDiagonal(t *testing.T) {
	m := FromRows([][]float64{{3, 0}, {0, 1}})
	vals, vecs := JacobiEigen(m)
	if !almostEq(vals[0], 3, 1e-10) || !almostEq(vals[1], 1, 1e-10) {
		t.Errorf("vals = %v", vals)
	}
	// First eigenvector should be ±e1.
	if !almostEq(math.Abs(vecs.At(0, 0)), 1, 1e-10) {
		t.Errorf("vecs = %v", vecs.Data)
	}
}

func TestJacobiEigenKnown2x2(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1.
	m := FromRows([][]float64{{2, 1}, {1, 2}})
	vals, vecs := JacobiEigen(m)
	if !almostEq(vals[0], 3, 1e-10) || !almostEq(vals[1], 1, 1e-10) {
		t.Fatalf("vals = %v", vals)
	}
	// Check A v = λ v for the first column.
	v0 := Vector{vecs.At(0, 0), vecs.At(1, 0)}
	av := m.MulVec(v0)
	for i := range av {
		if !almostEq(av[i], 3*v0[i], 1e-9) {
			t.Errorf("A*v != 3v: %v vs %v", av, v0)
		}
	}
}

func TestJacobiEigenReconstructsRandomSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 5; trial++ {
		n := 3 + trial
		m := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				x := rng.NormFloat64()
				m.Set(i, j, x)
				m.Set(j, i, x)
			}
		}
		vals, vecs := JacobiEigen(m)
		// Reconstruct V diag(vals) V^T and compare to m.
		vd := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				vd.Set(i, j, vecs.At(i, j)*vals[j])
			}
		}
		rec := vd.Mul(vecs.T())
		for i := 0; i < n*n; i++ {
			if !almostEq(rec.Data[i], m.Data[i], 1e-8) {
				t.Fatalf("trial %d: reconstruction mismatch at %d: %v vs %v", trial, i, rec.Data[i], m.Data[i])
			}
		}
		// Eigenvalues sorted descending.
		for i := 1; i < n; i++ {
			if vals[i] > vals[i-1]+1e-12 {
				t.Fatalf("eigenvalues not sorted: %v", vals)
			}
		}
	}
}

func TestPCARecoversDominantDirection(t *testing.T) {
	// Points along the diagonal y=x with tiny noise: first PC must be ~(1,1)/√2.
	rng := rand.New(rand.NewSource(3))
	rows := make([][]float64, 200)
	for i := range rows {
		x := rng.NormFloat64() * 10
		rows[i] = []float64{x + rng.NormFloat64()*0.01, x + rng.NormFloat64()*0.01}
	}
	p := FitPCA(FromRows(rows), 2)
	c0 := math.Abs(p.Components.At(0, 0))
	c1 := math.Abs(p.Components.At(1, 0))
	if !almostEq(c0, 1/math.Sqrt2, 0.01) || !almostEq(c1, 1/math.Sqrt2, 0.01) {
		t.Errorf("first PC = (%v,%v), want ~(0.707,0.707)", c0, c1)
	}
	if p.Eigvals[0] < 50*p.Eigvals[1] {
		t.Errorf("eigenvalue gap too small: %v", p.Eigvals)
	}
}

func TestPCAProjectCentersData(t *testing.T) {
	rows := [][]float64{{1, 0}, {3, 0}, {5, 0}}
	p := FitPCA(FromRows(rows), 1)
	// Projection of the mean point must be ~0.
	z := p.Project(Vector{3, 0})
	if !almostEq(z[0], 0, 1e-10) {
		t.Errorf("projection of mean = %v, want 0", z[0])
	}
	all := p.ProjectAll(FromRows(rows))
	if all.Rows != 3 || all.Cols != 1 {
		t.Fatalf("ProjectAll dims = %dx%d", all.Rows, all.Cols)
	}
}

func TestPCADegenerateInput(t *testing.T) {
	p := FitPCA(FromRows([][]float64{{1, 2, 3}}), 2)
	z := p.Project(Vector{1, 2, 3})
	if len(z) != 2 {
		t.Fatalf("Project len = %d", len(z))
	}
}
