package tpch

import (
	"math/rand"
	"testing"

	"warper/internal/dataset"
)

func TestGenerateShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	db := Generate(Config{Orders: 1000, MaxLinesPerOrder: 7}, rng)
	if db.Orders.NumRows() != 1000 {
		t.Fatalf("orders = %d", db.Orders.NumRows())
	}
	nl := db.Lineitem.NumRows()
	if nl < 1000 || nl > 7000 {
		t.Fatalf("lineitem rows = %d, want within fan-out bounds", nl)
	}
	if db.Orders.NumCols() != 4 || db.Lineitem.NumCols() != 5 {
		t.Errorf("column counts = %d, %d", db.Orders.NumCols(), db.Lineitem.NumCols())
	}
}

func TestForeignKeysResolve(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	db := Generate(Config{Orders: 500}, rng)
	keys := map[float64]bool{}
	for _, k := range db.Orders.Cols[OColOrderKey].Vals {
		keys[k] = true
	}
	for _, k := range db.Lineitem.Cols[LColOrderKey].Vals {
		if !keys[k] {
			t.Fatal("dangling l_orderkey")
		}
	}
}

func TestTotalPriceConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	db := Generate(Config{Orders: 200}, rng)
	// o_totalprice equals the discounted sum of its lineitems.
	sums := map[float64]float64{}
	for r := 0; r < db.Lineitem.NumRows(); r++ {
		k := db.Lineitem.Cols[LColOrderKey].Vals[r]
		ep := db.Lineitem.Cols[LColExtendedPrice].Vals[r]
		d := db.Lineitem.Cols[LColDiscount].Vals[r]
		sums[k] += ep * (1 - d)
	}
	for r := 0; r < db.Orders.NumRows(); r++ {
		k := db.Orders.Cols[OColOrderKey].Vals[r]
		want := sums[k]
		got := db.Orders.Cols[OColTotalPrice].Vals[r]
		if diff := got - want; diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("order %v total %v != lineitem sum %v", k, got, want)
		}
	}
}

func TestShipAfterOrderDate(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	db := Generate(Config{Orders: 300}, rng)
	odate := map[float64]float64{}
	for r := 0; r < db.Orders.NumRows(); r++ {
		odate[db.Orders.Cols[OColOrderKey].Vals[r]] = db.Orders.Cols[OColOrderDate].Vals[r]
	}
	for r := 0; r < db.Lineitem.NumRows(); r++ {
		k := db.Lineitem.Cols[LColOrderKey].Vals[r]
		if db.Lineitem.Cols[LColShipDate].Vals[r] <= odate[k] {
			t.Fatal("shipdate not after orderdate")
		}
	}
}

func TestColumnTypes(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	db := Generate(Config{}, rng)
	if db.Orders.Cols[OColOrderDate].Type != dataset.Date {
		t.Error("o_orderdate should be a date column")
	}
	if db.Lineitem.Cols[LColShipDate].Type != dataset.Date {
		t.Error("l_shipdate should be a date column")
	}
}
