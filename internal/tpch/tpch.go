// Package tpch generates scaled TPC-H-shaped Lineitem and Orders tables for
// the end-to-end experiments of §4.2 (Figure 1, Table 9, Figure 9). The
// schema keeps the columns those experiments predicate on — quantities,
// prices, discounts, dates — and the key–foreign-key l_orderkey→o_orderkey
// relationship with realistic fan-out. Row counts are scaled down from
// SF-10 (documented substitution in DESIGN.md); every compared method runs
// against the same tables, so relative plan-quality results survive.
package tpch

import (
	"math"
	"math/rand"

	"warper/internal/dataset"
)

// Config sizes the generated database.
type Config struct {
	Orders int // number of orders (default 8000)
	// MaxLinesPerOrder bounds the L-per-O fan-out (uniform 1..Max, TPC-H
	// uses 1..7).
	MaxLinesPerOrder int
}

// DefaultConfig returns the scaled default sizing.
func DefaultConfig() Config { return Config{Orders: 8000, MaxLinesPerOrder: 7} }

// DB holds the generated tables.
type DB struct {
	Orders   *dataset.Table
	Lineitem *dataset.Table
}

// Column layout constants for predicates and joins.
const (
	// Orders columns.
	OColOrderKey   = 0
	OColCustKey    = 1
	OColTotalPrice = 2
	OColOrderDate  = 3
	// Lineitem columns.
	LColOrderKey      = 0
	LColQuantity      = 1
	LColExtendedPrice = 2
	LColDiscount      = 3
	LColShipDate      = 4
)

// Generate builds the database.
func Generate(cfg Config, rng *rand.Rand) *DB {
	if cfg.Orders <= 0 {
		cfg.Orders = DefaultConfig().Orders
	}
	if cfg.MaxLinesPerOrder <= 0 {
		cfg.MaxLinesPerOrder = DefaultConfig().MaxLinesPerOrder
	}
	n := cfg.Orders
	okey := make([]float64, n)
	ckey := make([]float64, n)
	price := make([]float64, n)
	odate := make([]float64, n)

	var lkey, qty, eprice, disc, sdate []float64
	for i := 0; i < n; i++ {
		okey[i] = float64(i + 1)
		ckey[i] = float64(rng.Intn(n/10 + 1))
		odate[i] = float64(rng.Intn(2406)) // ~6.6 years of order dates
		lines := 1 + rng.Intn(cfg.MaxLinesPerOrder)
		var orderTotal float64
		for l := 0; l < lines; l++ {
			q := float64(1 + rng.Intn(50))
			// Extended price correlates with quantity, log-normal unit price.
			unit := math.Exp(rng.NormFloat64()*0.4 + 6.9) // ≈ $1000 median
			ep := q * unit
			d := float64(rng.Intn(11)) / 100 // 0.00..0.10
			ship := odate[i] + float64(1+rng.Intn(120))
			lkey = append(lkey, okey[i])
			qty = append(qty, q)
			eprice = append(eprice, ep)
			disc = append(disc, d)
			sdate = append(sdate, ship)
			orderTotal += ep * (1 - d)
		}
		price[i] = orderTotal
	}

	orders := dataset.NewTable("orders",
		&dataset.Column{Name: "o_orderkey", Type: dataset.Real, Vals: okey},
		&dataset.Column{Name: "o_custkey", Type: dataset.Real, Vals: ckey},
		&dataset.Column{Name: "o_totalprice", Type: dataset.Real, Vals: price},
		&dataset.Column{Name: "o_orderdate", Type: dataset.Date, Vals: odate},
	)
	lineitem := dataset.NewTable("lineitem",
		&dataset.Column{Name: "l_orderkey", Type: dataset.Real, Vals: lkey},
		&dataset.Column{Name: "l_quantity", Type: dataset.Real, Vals: qty},
		&dataset.Column{Name: "l_extendedprice", Type: dataset.Real, Vals: eprice},
		&dataset.Column{Name: "l_discount", Type: dataset.Real, Vals: disc},
		&dataset.Column{Name: "l_shipdate", Type: dataset.Date, Vals: sdate},
	)
	return &DB{Orders: orders, Lineitem: lineitem}
}
