// Package warperbench benchmarks regenerate every paper table/figure at the
// quick scale (one rep per configuration) so `go test -bench=.` exercises
// the full experiment surface, plus micro-benchmarks for the hot paths.
package warperbench

import (
	"context"
	"math/rand"
	"testing"

	"warper/internal/annotator"
	"warper/internal/ce"
	"warper/internal/dataset"
	"warper/internal/experiments"
	"warper/internal/nn"
	"warper/internal/query"
	"warper/internal/resilience"
	"warper/internal/warper"
	"warper/internal/workload"
)

// benchScale returns the per-iteration experiment scale for benchmarks.
func benchScale() experiments.Scale { return experiments.QuickScale() }

func runExperiment(b *testing.B, id string) {
	b.Helper()
	run, err := experiments.Lookup(id)
	if err != nil {
		b.Fatal(err)
	}
	sc := benchScale()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tables := run(sc, int64(i)+1)
		if len(tables) == 0 {
			b.Fatal("experiment produced no tables")
		}
	}
}

// One benchmark per paper table/figure.

func BenchmarkFig1Motivation(b *testing.B)       { runExperiment(b, "fig1") }
func BenchmarkFig5WorkloadViz(b *testing.B)      { runExperiment(b, "fig5") }
func BenchmarkFig6AdaptationCurves(b *testing.B) { runExperiment(b, "fig6") }
func BenchmarkFig7AdaptationViz(b *testing.B)    { runExperiment(b, "fig7") }
func BenchmarkFig8WorkloadCurves(b *testing.B)   { runExperiment(b, "fig8") }
func BenchmarkFig9EndToEnd(b *testing.B)         { runExperiment(b, "fig9") }
func BenchmarkFig10Hyper(b *testing.B)           { runExperiment(b, "fig10") }
func BenchmarkFig11GenBudget(b *testing.B)       { runExperiment(b, "fig11") }
func BenchmarkTable6Costs(b *testing.B)          { runExperiment(b, "table6") }
func BenchmarkTable7aSpeedups(b *testing.B)      { runExperiment(b, "table7a") }
func BenchmarkTable7bModels(b *testing.B)        { runExperiment(b, "table7b") }
func BenchmarkTable7cDrifts(b *testing.B)        { runExperiment(b, "table7c") }
func BenchmarkTable7dJoinCE(b *testing.B)        { runExperiment(b, "table7d") }
func BenchmarkTable8WorkloadPairs(b *testing.B)  { runExperiment(b, "table8") }
func BenchmarkTable9PlanGaps(b *testing.B)       { runExperiment(b, "table9") }
func BenchmarkTable10Ablations(b *testing.B)     { runExperiment(b, "table10") }
func BenchmarkTable11GenCPU(b *testing.B)        { runExperiment(b, "table11") }

// --- micro-benchmarks --------------------------------------------------------

func BenchmarkAnnotatorCount(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	tbl := dataset.PRSA(6000, rng)
	sch := query.SchemaOf(tbl)
	ann := annotator.New(tbl)
	g := workload.New("w3", tbl, sch, workload.Options{})
	preds := workload.Generate(g, 64, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ann.Count(context.Background(), preds[i%len(preds)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAnnotatorBatch(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	tbl := dataset.PRSA(6000, rng)
	sch := query.SchemaOf(tbl)
	ann := annotator.New(tbl)
	g := workload.New("w3", tbl, sch, workload.Options{})
	preds := workload.Generate(g, 100, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ann.AnnotateAll(context.Background(), preds); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAnnotateResilienceOverhead measures what the retry/breaker
// wrapper costs on the fault-free fast path: the same annotation batch
// through the raw annotator and through resilience.Wrap. The delta is the
// per-call price of the breaker check, the attempt context, and the cost
// ledger charge — it should stay far below one table scan.
func BenchmarkAnnotateResilienceOverhead(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	tbl := dataset.PRSA(6000, rng)
	sch := query.SchemaOf(tbl)
	ann := annotator.New(tbl)
	g := workload.New("w3", tbl, sch, workload.Options{})
	preds := workload.Generate(g, 100, rng)

	bench := func(src annotator.Source) func(*testing.B) {
		return func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := src.AnnotateAll(context.Background(), preds); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.Run("raw", bench(ann))
	b.Run("resilient", bench(resilience.Wrap(ann, resilience.Policy{Seed: 4}, resilience.Events{})))
}

func BenchmarkLMEstimate(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	tbl := dataset.PRSA(3000, rng)
	sch := query.SchemaOf(tbl)
	ann := annotator.New(tbl)
	g := workload.New("w1", tbl, sch, workload.Options{})
	train := benchAnnotateAll(b, ann, workload.Generate(g, 300, rng))
	lm := ce.NewLM(ce.LMMLP, sch, 1)
	if err := lm.Train(train); err != nil {
		b.Fatal(err)
	}
	preds := workload.Generate(g, 64, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lm.Estimate(preds[i%len(preds)])
	}
}

func BenchmarkLMFineTune(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	tbl := dataset.PRSA(3000, rng)
	sch := query.SchemaOf(tbl)
	ann := annotator.New(tbl)
	g := workload.New("w1", tbl, sch, workload.Options{})
	train := benchAnnotateAll(b, ann, workload.Generate(g, 300, rng))
	lm := ce.NewLM(ce.LMMLP, sch, 1)
	if err := lm.Train(train); err != nil {
		b.Fatal(err)
	}
	batch := benchAnnotateAll(b, ann, workload.Generate(g, 32, rng))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := lm.Update(batch); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNNForwardBackward(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	net := nn.MLP(18, 128, 3, 16, rng)
	x := make([]float64, 18)
	for i := range x {
		x[i] = rng.Float64()
	}
	grad := make([]float64, 16)
	grad[0] = 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Forward(x)
		net.Backward(grad)
	}
}

func BenchmarkWarperPeriod(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	tbl := dataset.PRSA(2000, rng)
	sch := query.SchemaOf(tbl)
	ann := annotator.New(tbl)
	opts := workload.Options{MaxConstrained: 2}
	gT := workload.New("w1", tbl, sch, opts)
	gN := workload.New("w4", tbl, sch, opts)
	train := benchAnnotateAll(b, ann, workload.Generate(gT, 250, rng))
	lm := ce.NewLM(ce.LMMLP, sch, 1)
	if err := lm.Train(train); err != nil {
		b.Fatal(err)
	}
	cfg := warper.DefaultConfig()
	cfg.Hidden = 64
	cfg.Depth = 2
	cfg.NIters = 30
	cfg.Gamma = 200
	cfg.PickSize = 100
	ad, err := warper.New(cfg, lm, sch, ann, train)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		arrivals := make([]warper.Arrival, 10)
		for j := range arrivals {
			p := gN.Gen(rng)
			gt, err := ann.Count(context.Background(), p)
			if err != nil {
				b.Fatal(err)
			}
			arrivals[j] = warper.Arrival{Pred: p, GT: gt, HasGT: true}
		}
		if _, err := ad.Period(arrivals); err != nil {
			b.Fatal(err)
		}
	}
}

// benchAnnotateAll labels a workload for benchmark setup, failing the
// benchmark on the (setup-only) error path.
func benchAnnotateAll(b *testing.B, ann *annotator.Annotator, ps []query.Predicate) []query.Labeled {
	b.Helper()
	out, err := ann.AnnotateAll(context.Background(), ps)
	if err != nil {
		b.Fatal(err)
	}
	return out
}
