// Continuous drifts: Warper adapting periodically while the workload and
// data keep changing (the Figure 2 shapes — short-lived drifts, persistent
// drifts, and a combined data+workload drift), with det_drft classifying
// each period.
//
// Run with: go run ./examples/continuous
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"warper/internal/annotator"
	"warper/internal/ce"
	"warper/internal/dataset"
	"warper/internal/query"
	"warper/internal/warper"
	"warper/internal/workload"
)

func main() {
	rng := rand.New(rand.NewSource(3))
	tbl := dataset.PRSA(6000, rng)
	sch := query.SchemaOf(tbl)
	ann := annotator.New(tbl)
	opts := workload.Options{MinConstrained: 1, MaxConstrained: 2}

	w1 := workload.New("w1", tbl, sch, opts)
	w4 := workload.New("w4", tbl, sch, opts)

	train := must1(ann.AnnotateAll(context.Background(), workload.Generate(w1, 600, rng)))
	model := ce.NewLM(ce.LMMLP, sch, 1)
	must(model.Train(train))

	cfg := warper.DefaultConfig()
	cfg.Hidden = 64
	cfg.Depth = 2
	cfg.Gamma = 200
	adapter := must1(warper.New(cfg, model, sch, ann, train))

	// A drift schedule in the shape of Figure 2(c): stable, a short-lived
	// workload drift, back to stable, then a combined data+workload drift.
	sched := workload.NewSchedule(
		workload.Phase{Gen: w1, Periods: 2},
		workload.Phase{Gen: w4, Periods: 3},
		workload.Phase{Gen: w1, Periods: 2},
		workload.Phase{Gen: w4, Periods: 3, OnEnter: func(t *dataset.Table, r *rand.Rand) {
			dataset.UpdateDrift(t, 0.5, 1.0, r)
			fmt.Println("  >> data drift injected: 50% of rows updated")
		}},
	)

	fmt.Println("period | workload | detected mode | generated | annotated | GMQ on current workload")
	for p := 0; p < sched.TotalPeriods(); p++ {
		phase, first := sched.PhaseAt(p)
		if first && phase.OnEnter != nil {
			phase.OnEnter(tbl, rng)
		}
		// 15 labeled queries arrive per period from the current workload.
		arrivals := make([]warper.Arrival, 15)
		for i := range arrivals {
			pr := phase.Gen.Gen(rng)
			arrivals[i] = warper.Arrival{Pred: pr, GT: must1(ann.Count(context.Background(), pr)), HasGT: true}
		}
		rep := must1(adapter.Period(arrivals))

		test := must1(ann.AnnotateAll(context.Background(), workload.Generate(phase.Gen, 80, rng)))
		fmt.Printf("%6d | %-8s | %-13s | %9d | %9d | %.2f\n",
			p+1, phase.Gen.Name(), rep.Detection.Mode, rep.Generated, rep.Annotated,
			ce.EvalGMQ(model, test))
	}
	fmt.Printf("\nfinal π=%.2f γ=%d — Warper relaxed or tightened its own thresholds as drifts came and went\n",
		adapter.Pi(), adapter.Gamma())
}

// must aborts the example on an unexpected error.
func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

// must1 unwraps a (value, error) pair, aborting on error.
func must1[T any](v T, err error) T {
	must(err)
	return v
}
