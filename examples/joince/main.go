// Join cardinality estimation: train an MSCN model over an IMDB-like star
// schema, drift the predicate workload, and watch estimation quality recover
// as the model is updated with new join queries (the Table 7d scenario).
//
// Run with: go run ./examples/joince
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"warper/internal/annotator"
	"warper/internal/ce"
	"warper/internal/imdb"
)

func main() {
	rng := rand.New(rand.NewSource(7))

	// 1. A star schema: title ⋈ movie_companies ⋈ movie_info.
	db := imdb.Generate(imdb.Config{Titles: 2500}, rng)
	ja := annotator.NewJoin(db.Tables()...)
	fmt.Printf("star schema: title=%d, movie_companies=%d, movie_info=%d rows\n",
		db.Title.NumRows(), db.MovieCompanies.NumRows(), db.MovieInfo.NumRows())

	// 2. Train MSCN on join queries whose predicates follow the "sample"
	// style (w4-like: bounds from min/max of sampled rows).
	trainW := &imdb.JoinWorkload{DB: db, PredStyle: "sample"}
	train := must1(ja.AnnotateAll(context.Background(), trainW.Generate(500, rng)))
	model := ce.NewMSCN(db.Catalog, 1)
	must(model.TrainJoin(train))

	testTrain := must1(ja.AnnotateAll(context.Background(), trainW.Generate(100, rng)))
	fmt.Printf("in-distribution GMQ: %.2f\n", must1(ce.EvalJoinGMQ(model, testTrain)))

	// 3. The predicate workload drifts to uniform bounds (w1-like).
	newW := &imdb.JoinWorkload{DB: db, PredStyle: "uniform"}
	testNew := must1(ja.AnnotateAll(context.Background(), newW.Generate(100, rng)))
	fmt.Printf("post-drift GMQ:      %.2f\n", must1(ce.EvalJoinGMQ(model, testNew)))

	// 4. Updating with batches of new join queries recovers accuracy.
	for batch := 1; batch <= 4; batch++ {
		arrivals := must1(ja.AnnotateAll(context.Background(), newW.Generate(100, rng)))
		must(model.UpdateJoin(arrivals))
		fmt.Printf("after %d×100 new join queries: GMQ %.2f\n",
			batch, must1(ce.EvalJoinGMQ(model, testNew)))
	}

	// 5. A peek at individual estimates.
	fmt.Println("\nsample estimates (estimate vs true):")
	for _, lq := range testNew[:5] {
		fmt.Printf("  %d-table join: %8.0f vs %8.0f\n",
			len(lq.Query.Tables), must1(model.EstimateJoin(lq.Query)), lq.Card)
	}
}

// must aborts the example on an unexpected error.
func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

// must1 unwraps a (value, error) pair, aborting on error.
func must1[T any](v T, err error) T {
	must(err)
	return v
}
