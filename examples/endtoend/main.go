// End-to-end plan quality: cardinality estimates drive the three plan
// decisions of §4.2 (buffer spills, nested-loop vs hash join, bitmap side)
// in the mini engine over TPC-H-shaped tables — showing how CE error turns
// into latency, and how adaptation wins it back.
//
// Run with: go run ./examples/endtoend
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"warper/internal/annotator"
	"warper/internal/ce"
	"warper/internal/engine"
	"warper/internal/query"
	"warper/internal/tpch"
	"warper/internal/workload"
)

func main() {
	rng := rand.New(rand.NewSource(11))
	db := tpch.Generate(tpch.Config{Orders: 3000}, rng)
	eng := engine.New(db)
	schL := query.SchemaOf(db.Lineitem)
	schO := query.SchemaOf(db.Orders)
	annL := annotator.New(db.Lineitem)
	annO := annotator.New(db.Orders)
	fmt.Printf("TPC-H-shaped DB: %d orders, %d lineitems\n",
		db.Orders.NumRows(), db.Lineitem.NumRows())

	// 1. How bad can a misplanned query get? Worst-case plan flips.
	wideL := query.NewFullRange(schL)
	wideO := query.NewFullRange(schO)
	trueL, trueO := must1(annL.Count(context.Background(), wideL)), must1(annO.Count(context.Background(), wideO))
	fmt.Println("\nworst-case plan flips (same query, wrong estimates):")
	for _, s := range []engine.Scenario{engine.S1BufferSpill, engine.S2JoinType, engine.S3BitmapSide} {
		good, bad := eng.LatencyGap(s, wideL, wideO, trueL/1000, trueO/1000, trueL, trueO)
		fmt.Printf("  %-16s good plan %8v  bad plan %10v  (%.1fx)\n",
			s, good, bad, float64(bad)/float64(good))
	}

	// 2. A CE model planning real queries: train on w1, then measure how
	// its estimates translate into plan latency vs the true-cardinality
	// plans.
	opts := workload.Options{MinConstrained: 1, MaxConstrained: 2}
	gL := workload.New("w1", db.Lineitem, schL, opts)
	gO := workload.New("w1", db.Orders, schO, opts)
	trainL := must1(annL.AnnotateAll(context.Background(), workload.Generate(gL, 500, rng)))
	trainO := must1(annO.AnnotateAll(context.Background(), workload.Generate(gO, 500, rng)))
	mL := ce.NewLM(ce.LMMLP, schL, 1)
	must(mL.Train(trainL))
	mO := ce.NewLM(ce.LMMLP, schO, 2)
	must(mO.Train(trainO))

	report := func(label string, gl, gob workload.Generator) {
		var actual, ideal float64
		const n = 30
		for i := 0; i < n; i++ {
			pl, po := gl.Gen(rng), gob.Gen(rng)
			tl, to := must1(annL.Count(context.Background(), pl)), must1(annO.Count(context.Background(), po))
			good, bad := eng.LatencyGap(engine.S2JoinType, pl, po,
				mL.Estimate(pl), mO.Estimate(po), tl, to)
			actual += float64(bad)
			ideal += float64(good)
		}
		fmt.Printf("  %-28s latency vs perfect plans: %.2fx\n", label, actual/ideal)
	}
	fmt.Println("\nS2 (join-type choice) with the trained model:")
	report("in-distribution (w1)", gL, gO)

	// 3. Drift the lineitem workload to w2 — plans degrade — then adapt.
	gL2 := workload.New("w2", db.Lineitem, schL, opts)
	report("after drift to w2", gL2, gO)

	for round := 0; round < 3; round++ {
		newQ := must1(annL.AnnotateAll(context.Background(), workload.Generate(gL2, 100, rng)))
		must(mL.Update(newQ))
	}
	report("after adapting on 300 queries", gL2, gO)
}

// must aborts the example on an unexpected error.
func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

// must1 unwraps a (value, error) pair, aborting on error.
func must1[T any](v T, err error) T {
	must(err)
	return v
}
