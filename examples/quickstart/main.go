// Quickstart: train a learned cardinality estimator, inject a workload
// drift, and adapt it with Warper — comparing against plain fine-tuning.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"warper/internal/adapt"
	"warper/internal/annotator"
	"warper/internal/ce"
	"warper/internal/dataset"
	"warper/internal/query"
	"warper/internal/warper"
	"warper/internal/workload"
)

func main() {
	rng := rand.New(rand.NewSource(42))

	// 1. A table and its schema. PRSA is a synthetic stand-in for the
	// paper's Beijing air-quality dataset: 1 date + 6 real + 2 categorical
	// columns.
	tbl := dataset.PRSA(6000, rng)
	sch := query.SchemaOf(tbl)
	ann := annotator.New(tbl)
	fmt.Printf("table %q: %d rows × %d cols\n", tbl.Name, tbl.NumRows(), tbl.NumCols())

	// 2. Train an LM-style estimator on a historical workload (w1: uniform
	// range predicates).
	opts := workload.Options{MinConstrained: 1, MaxConstrained: 2}
	histGen := workload.New("w1", tbl, sch, opts)
	train := must1(ann.AnnotateAll(context.Background(), workload.Generate(histGen, 600, rng)))
	model := ce.NewLM(ce.LMMLP, sch, 1)
	must(model.Train(train))
	fmt.Printf("trained %s on %d labeled queries\n", model.Name(), len(train))

	// 3. The workload drifts: new queries follow w4 (min/max of sampled
	// rows — a very different distribution).
	newGen := workload.New("w4", tbl, sch, opts)
	stream := must1(ann.AnnotateAll(context.Background(), workload.Generate(newGen, 200, rng)))
	test := must1(ann.AnnotateAll(context.Background(), workload.Generate(newGen, 150, rng)))
	fmt.Printf("\npost-drift GMQ (lower is better, 1.0 is perfect):\n")
	fmt.Printf("  before any adaptation: %.2f\n", ce.EvalGMQ(model, test))

	// 4. Adapt with Warper vs plain fine-tuning, consuming the same small
	// batches of newly arriving queries.
	cfg := warper.DefaultConfig()
	cfg.Hidden = 64
	cfg.Depth = 2
	cfg.Gamma = 300 // arrivals per period stay far below γ → c2 drift
	warperModel := model.Clone()
	adapter := must1(warper.New(cfg, warperModel, sch, ann, train))
	ftModel := model.Clone()

	periods := adapt.SplitPeriods(adapt.ArrivalsOf(stream, true), 10)
	for i, p := range periods {
		rep := must1(adapter.Period(p))
		must(ftModel.Update(labeled(p)))
		if i == 0 {
			fmt.Printf("\nfirst period: Warper detected drift mode %q, generated %d synthetic queries\n",
				rep.Detection.Mode, rep.Generated)
		}
		if (i+1)%5 == 0 {
			fmt.Printf("  after %3d new queries: Warper GMQ %.2f | fine-tuning GMQ %.2f\n",
				(i+1)*10, ce.EvalGMQ(warperModel, test), ce.EvalGMQ(ftModel, test))
		}
	}
	fmt.Printf("\nWarper's costs this session: %s\n", adapter.Ledger)
}

func labeled(arr []warper.Arrival) []query.Labeled {
	var out []query.Labeled
	for _, a := range arr {
		if a.HasGT {
			out = append(out, query.Labeled{Pred: a.Pred, Card: a.GT})
		}
	}
	return out
}

// must aborts the example on an unexpected error.
func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

// must1 unwraps a (value, error) pair, aborting on error.
func must1[T any](v T, err error) T {
	must(err)
	return v
}
